package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transport"
)

// LiveConfig describes a full deployment run with real concurrency: one
// goroutine per node over an in-process asynchronous network. It is the
// runtime used by integration tests, the failure-injection suite and the
// examples; the deterministic virtual-time engine used for the paper's
// figures lives in internal/core.
type LiveConfig struct {
	// Model is the template model; every worker gets an independent clone,
	// and its initial parameters seed every server's θ₀.
	Model *nn.Sequential
	// Train supplies the workers' mini-batches.
	Train *dataset.Dataset
	// NumServers and FServers are n and f (declared) for parameter servers.
	NumServers, FServers int
	// NumWorkers and FWorkers are n̄ and f̄ (declared) for workers.
	NumWorkers, FWorkers int
	// QuorumServers (q) and QuorumWorkers (q̄) override the default minimum
	// quorums 2f+3 when positive.
	QuorumServers, QuorumWorkers int
	// ServerAttacks maps server index → behaviour for actually-Byzantine
	// servers. Nil entries are honest.
	ServerAttacks map[int]attack.Attack
	// WorkerAttacks maps worker index → behaviour.
	WorkerAttacks map[int]attack.Attack
	// Steps is the number of learning steps.
	Steps int
	// Batch is the mini-batch size.
	Batch int
	// LR returns the learning rate for a step; nil defaults to 0.05/(1+t/200).
	LR func(step int) float64
	// Rule aggregates gradients server-side; nil defaults to
	// MultiKrum{F: FWorkers}.
	Rule gar.Rule
	// ParamRule aggregates parameter vectors; nil defaults to Median.
	ParamRule gar.Rule
	// Delay optionally injects per-message delivery delays (asynchrony).
	Delay transport.DelayFunc
	// Faults optionally injects seeded network faults (drops, duplication,
	// reordering, delay spikes, temporary partitions) into every node's
	// send path; composes with Delay.
	Faults *transport.FaultInjector
	// Timeout bounds each quorum wait. 0 defaults to 30 s; negative waits
	// forever.
	Timeout time.Duration
	// Seed drives all per-node generators.
	Seed uint64
	// SkipValidation disables the theoretical bound checks (used by tests
	// that deliberately run illegal deployments, e.g. the vanilla baseline).
	SkipValidation bool
	// Suspicion, when non-nil, is shared by all honest servers to
	// accumulate per-worker exclusion statistics (requires a selective
	// gradient rule such as the default Multi-Krum).
	Suspicion *stats.Suspicion
	// Trace, when non-nil, records protocol events from every server.
	Trace *trace.Recorder
	// Momentum, when positive, enables heavy-ball momentum on server
	// updates (extension; see ServerConfig.Momentum).
	Momentum float64
	// ShardSize, when positive, streams every vector as coordinate shards
	// of that many coordinates and aggregates inbound shards incrementally
	// (see ServerConfig.ShardSize). Zero keeps whole-vector framing.
	ShardSize int
	// Compression applies wire payload compression to every honest node's
	// traffic (float32 truncation, delta frames, or top-k sparsification —
	// see internal/compress). Honest endpoints are wrapped below the fault
	// injector, so injected duplication, reordering and delay spikes hit
	// already-negotiated compressed streams the way a real network would.
	// Byzantine nodes are exempt, mirroring Faults: the adversary's covert
	// network is ideal, and compressing its payloads would perturb its
	// chosen attack vectors. The zero value disables compression.
	Compression compress.Config
	// Mailbox bounds every node's inbound mailbox per sender and, when
	// bounded, routes every honest node's sends through per-link courier
	// goroutines with equally bounded outboxes (see transport.Couriers) —
	// the actor runtime described in DESIGN.md. A fast or Byzantine peer
	// can then buffer at most Cap frames at each receiver and each honest
	// sender queues at most Cap frames per link, so a node's worst-case
	// buffering is O(n·Cap) regardless of traffic rates. The zero value
	// keeps the unbounded mailboxes of the pure asynchronous model, and
	// overflow-free schedules are byte-for-byte unaffected by the policy
	// chosen. Drops are counted in LiveResult.DroppedOverflow.
	Mailbox transport.MailboxConfig
	// Metrics, when non-nil, receives one live handle per node: every
	// mailbox, courier and collector counter is mirrored into it as it
	// increments, and node loops publish step/liveness progress — the
	// registry a /metrics + /healthz listener scrapes mid-run.
	Metrics *metrics.Registry
	// Checkpoint, when non-nil, makes every honest server persist its
	// protocol state into Checkpoint.Dir every Checkpoint.Every steps
	// (atomic write-then-rename, one file per server ID — see
	// CheckpointSpec). Byzantine servers never checkpoint: recovery is an
	// honest-node concern.
	Checkpoint *CheckpointSpec
	// Churn, when non-nil, puts one honest server through a live
	// crash-recovery cycle: it checkpoints periodically, is killed
	// mid-protocol once it reaches KillAtStep, and restarts under the same
	// ID from its newest on-disk checkpoint with median rejoin. The rest of
	// the deployment rides the outage on its quorum slack. The victim uses
	// the churn cycle's own checkpoint cadence, independent of Checkpoint.
	Churn *LiveChurn
}

// LiveChurn configures the kill/restart cycle of LiveConfig.Churn.
type LiveChurn struct {
	// Server is the honest server index to kill and restart.
	Server int
	// KillAtStep kills the victim once its live step counter reaches this
	// step (0 < KillAtStep < Steps).
	KillAtStep int
	// CheckpointEvery is the victim's checkpoint cadence in steps; it must
	// be ≤ KillAtStep so at least one checkpoint is on disk at the kill.
	CheckpointEvery int
	// Dir is the victim's checkpoint directory.
	Dir string
}

// validate checks the churn cycle against the deployment.
func (c *LiveChurn) validate(cfg *LiveConfig) error {
	if c.Server < 0 || c.Server >= cfg.NumServers {
		return fmt.Errorf("cluster: churn targets server %d of %d", c.Server, cfg.NumServers)
	}
	if cfg.ServerAttacks[c.Server] != nil {
		return fmt.Errorf("cluster: churn victim %d is Byzantine; only honest servers churn", c.Server)
	}
	if c.KillAtStep <= 0 || c.KillAtStep >= cfg.Steps {
		return fmt.Errorf("cluster: churn kill step %d outside (0, %d)", c.KillAtStep, cfg.Steps)
	}
	if c.CheckpointEvery < 1 || c.CheckpointEvery > c.KillAtStep {
		return fmt.Errorf("cluster: churn checkpoint cadence %d outside [1, kill step %d]", c.CheckpointEvery, c.KillAtStep)
	}
	if c.Dir == "" {
		return fmt.Errorf("cluster: churn needs a checkpoint directory")
	}
	if cfg.ShardSize > 0 {
		return fmt.Errorf("cluster: churn rejoin needs whole-vector framing, not sharded streaming")
	}
	return nil
}

// Validate checks the deployment against the theoretical requirements of the
// paper (n ≥ 3f+3, 2f+3 ≤ q ≤ n−f for both roles).
func (c *LiveConfig) Validate() error {
	if err := gar.CheckDeployment("server", c.NumServers, c.FServers); err != nil {
		return err
	}
	if err := gar.CheckDeployment("worker", c.NumWorkers, c.FWorkers); err != nil {
		return err
	}
	if err := gar.CheckQuorum("server", c.NumServers, c.FServers, c.quorumServers()); err != nil {
		return err
	}
	if err := gar.CheckQuorum("worker", c.NumWorkers, c.FWorkers, c.quorumWorkers()); err != nil {
		return err
	}
	return nil
}

func (c *LiveConfig) quorumServers() int {
	if c.QuorumServers > 0 {
		return c.QuorumServers
	}
	return gar.MinQuorum(c.FServers)
}

func (c *LiveConfig) quorumWorkers() int {
	if c.QuorumWorkers > 0 {
		return c.QuorumWorkers
	}
	return gar.MinQuorum(c.FWorkers)
}

func (c *LiveConfig) lr() func(int) float64 {
	if c.LR != nil {
		return c.LR
	}
	return func(t int) float64 { return 0.05 / (1 + float64(t)/200) }
}

func (c *LiveConfig) gradRule() gar.Rule {
	if c.Rule != nil {
		return c.Rule
	}
	return gar.MultiKrum{F: c.FWorkers}
}

func (c *LiveConfig) paramRule() gar.Rule {
	if c.ParamRule != nil {
		return c.ParamRule
	}
	return gar.Median{}
}

func (c *LiveConfig) timeout() time.Duration {
	if c.Timeout == 0 {
		return 30 * time.Second
	}
	return c.Timeout
}

// ServerID and WorkerID name the nodes of a deployment; the naming scheme is
// shared with the virtual-time engine so logs and attacks line up.
func ServerID(i int) string { return fmt.Sprintf("ps%d", i) }

// WorkerID returns the network ID of worker j.
func WorkerID(j int) string { return fmt.Sprintf("wrk%d", j) }

// LiveResult holds the outcome of a live run.
type LiveResult struct {
	// ServerParams maps honest server index → final parameter vector.
	ServerParams map[int]tensor.Vector
	// Final is the coordinate-wise median of the honest servers' final
	// vectors — the model θ̄ the paper's convergence statement (Eq. 1) is
	// about.
	Final tensor.Vector
	// DroppedOverflow totals the frames shed by bounded mailboxes across
	// the whole deployment — inbound per-sender evictions plus outbound
	// courier-queue evictions. Zero whenever the schedule never overflowed
	// (in particular always zero with the unbounded default).
	DroppedOverflow uint64
	// DroppedClosed totals the frames that arrived at nodes after they had
	// shut down — the tail traffic of senders outliving receivers.
	DroppedClosed uint64
	// ChurnRestarted reports that the configured churn victim was actually
	// killed and came back through the checkpoint-restore + rejoin leg
	// (false when the run outran the kill, or no churn was configured).
	ChurnRestarted bool
}

// RunLive executes the deployment to completion and returns the honest
// servers' final models. Every node runs in its own goroutine; the call
// blocks until all have finished or one fails.
func RunLive(cfg LiveConfig) (*LiveResult, error) {
	return RunLiveContext(context.Background(), cfg)
}

// RunLiveContext is RunLive with cancellation: when ctx is cancelled the
// in-process network is torn down, which unblocks every node's quorum wait
// and makes the run return promptly with ctx's error.
func RunLiveContext(ctx context.Context, cfg LiveConfig) (*LiveResult, error) {
	if !cfg.SkipValidation {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Steps <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("cluster: Steps and Batch must be positive")
	}
	if err := cfg.Compression.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Mailbox.Validate(); err != nil {
		return nil, err
	}
	if cfg.Checkpoint != nil && (cfg.Checkpoint.Dir == "" || cfg.Checkpoint.Every < 1) {
		return nil, fmt.Errorf("cluster: checkpointing needs a directory and a positive cadence")
	}
	if cfg.Churn != nil {
		if err := cfg.Churn.validate(&cfg); err != nil {
			return nil, err
		}
	}

	network := transport.NewChanNetwork(cfg.Delay)
	defer network.Close()
	if err := network.SetMailbox(cfg.Mailbox); err != nil {
		return nil, err
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			network.Close()
		case <-watchDone:
		}
	}()

	rng := tensor.NewRNG(cfg.Seed)
	theta0 := cfg.Model.ParamVector()

	// wrapHonest stacks an honest node's send/receive path: compression
	// sits next to the wire (per-link codec state, inbound drop counters
	// bounded by the model dimension), the fault injector above it — so a
	// delayed or duplicated delivery re-enters an already-encoded stream,
	// exactly the composition the TCP runtime exhibits. A bounded mailbox
	// adds couriers on top: the node loop hands frames to per-link bounded
	// outboxes and never blocks on (or is blocked by) a slow link.
	var (
		courierMu sync.Mutex
		couriers  []*transport.Couriers
	)
	wrapHonest := func(ep transport.Endpoint, h *metrics.NodeMetrics) (transport.Endpoint, error) {
		if cfg.Compression.Enabled() {
			c, err := transport.NewCompressor(ep, cfg.Compression, len(theta0))
			if err != nil {
				return nil, err
			}
			if h != nil {
				// Mirror the wrapper's unnegotiated/malformed drops into the
				// node's live handle, like the TCP read loop does — without
				// this the in-process runtime's compression drops were
				// invisible to /metrics (caught by the counterparity lint).
				c.SetMetrics(h)
			}
			ep = c
		}
		ep = cfg.Faults.Wrap(ep)
		if cfg.Mailbox.Bounded() {
			c := transport.NewCouriers(ep, cfg.Mailbox)
			if h != nil {
				c.SetMetrics(h)
			}
			courierMu.Lock()
			couriers = append(couriers, c)
			courierMu.Unlock()
			ep = c
		}
		return ep, nil
	}

	// nodeHandle hands out (and wires up) one registry handle per node.
	nodeHandle := func(id string) *metrics.NodeMetrics {
		if cfg.Metrics == nil {
			return nil
		}
		h := cfg.Metrics.Node(id)
		network.SetNodeMetrics(id, h)
		return h
	}

	// Omniscient attacks get one shared view per message class: honest
	// nodes' vectors are published to it as they are produced, Byzantine
	// nodes snapshot it before corrupting (see attack.SharedView).
	serverView, workerView := AdversaryViews(
		cfg.FServers, cfg.ServerAttacks, cfg.FWorkers, cfg.WorkerAttacks)

	workerIDs := make([]string, cfg.NumWorkers)
	for j := range workerIDs {
		workerIDs[j] = WorkerID(j)
	}
	serverIDs := make([]string, cfg.NumServers)
	for i := range serverIDs {
		serverIDs[i] = ServerID(i)
	}

	type serverOut struct {
		index int
		theta tensor.Vector
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		outs      []serverOut
		runErrs   []error
		restarted bool
	)
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		runErrs = append(runErrs, err)
	}

	// Servers.
	for i := 0; i < cfg.NumServers; i++ {
		ep, err := network.Register(serverIDs[i])
		if err != nil {
			return nil, err
		}
		peers := make([]string, 0, cfg.NumServers-1)
		for k, id := range serverIDs {
			if k != i {
				peers = append(peers, id)
			}
		}
		scfg := ServerConfig{
			ID:              serverIDs[i],
			Workers:         workerIDs,
			Peers:           peers,
			Init:            theta0,
			GradRule:        cfg.gradRule(),
			ParamRule:       cfg.paramRule(),
			QuorumGradients: cfg.quorumWorkers(),
			QuorumParams:    cfg.quorumServers(),
			Steps:           cfg.Steps,
			LR:              cfg.lr(),
			Timeout:         cfg.timeout(),
			Attack:          cfg.ServerAttacks[i],
			Momentum:        cfg.Momentum,
			View:            serverView,
			ShardSize:       cfg.ShardSize,
			Metrics:         nodeHandle(serverIDs[i]),
		}
		if scfg.Attack == nil {
			scfg.Suspicion = cfg.Suspicion // honest servers report exclusions
			scfg.Trace = cfg.Trace
			scfg.Checkpoint = cfg.Checkpoint
		}
		idx := i
		if cfg.Churn != nil && i == cfg.Churn.Server {
			// The churn victim manages its own endpoints: it is killed
			// mid-run and re-registers the same ID for the recovery leg.
			wg.Add(1)
			go func() {
				defer wg.Done()
				theta, again, err := runChurnServer(network, ep, scfg, cfg.Churn, wrapHonest)
				mu.Lock()
				restarted = again
				mu.Unlock()
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				outs = append(outs, serverOut{index: idx, theta: theta})
				mu.Unlock()
			}()
			continue
		}
		sep := ep
		if scfg.Attack == nil {
			// Faults and compression hit honest traffic only — the
			// adversary's covert network is ideal by assumption, exactly as
			// in the simulator.
			sep, err = wrapHonest(ep, scfg.Metrics)
			if err != nil {
				return nil, err
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sep.Close()
			theta, err := RunServer(sep, scfg)
			if err != nil {
				fail(err)
				return
			}
			if scfg.Attack == nil {
				mu.Lock()
				outs = append(outs, serverOut{index: idx, theta: theta})
				mu.Unlock()
			}
		}()
	}

	// Workers.
	for j := 0; j < cfg.NumWorkers; j++ {
		ep, err := network.Register(workerIDs[j])
		if err != nil {
			return nil, err
		}
		wcfg := WorkerConfig{
			ID:           workerIDs[j],
			Servers:      serverIDs,
			Model:        cfg.Model.Clone(),
			Sampler:      dataset.NewSampler(cfg.Train, rng.Split()),
			Batch:        cfg.Batch,
			ParamRule:    cfg.paramRule(),
			QuorumParams: cfg.quorumServers(),
			Steps:        cfg.Steps,
			Timeout:      cfg.timeout(),
			Attack:       cfg.WorkerAttacks[j],
			View:         workerView,
			ShardSize:    cfg.ShardSize,
			Metrics:      nodeHandle(workerIDs[j]),
		}
		wep := ep
		if wcfg.Attack == nil {
			wep, err = wrapHonest(ep, wcfg.Metrics)
			if err != nil {
				return nil, err
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer wep.Close()
			if err := RunWorker(wep, wcfg); err != nil {
				fail(err)
			}
		}()
	}

	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: run cancelled: %w", err)
	}
	if len(runErrs) > 0 {
		return nil, fmt.Errorf("cluster: run failed: %w (and %d more)", runErrs[0], len(runErrs)-1)
	}

	res := &LiveResult{ServerParams: make(map[int]tensor.Vector, len(outs)), ChurnRestarted: restarted}
	// Settle in-flight delayed deliveries before reading the drop counters
	// (the deferred Close is then a no-op).
	network.Close()
	for _, id := range append(append([]string{}, serverIDs...), workerIDs...) {
		over, cl := network.Dropped(id)
		res.DroppedOverflow += over
		res.DroppedClosed += cl
	}
	for _, c := range couriers {
		res.DroppedOverflow += c.DroppedOverflow()
	}
	finals := make([]tensor.Vector, 0, len(outs))
	for _, o := range outs {
		res.ServerParams[o.index] = o.theta
		finals = append(finals, o.theta)
	}
	if len(finals) == 0 {
		return nil, fmt.Errorf("cluster: no honest server completed")
	}
	final, err := gar.Median{}.Aggregate(finals)
	if err != nil {
		return nil, err
	}
	res.Final = final
	return res, nil
}

// runChurnServer is one server's crash-recovery cycle inside a live run:
// run with periodic checkpointing until the live step counter reaches the
// kill step, tear the node down mid-protocol (mailbox closed, ID released),
// then re-register the same ID, restore the newest on-disk checkpoint and
// rejoin by adopting the median of a live peer quorum (ServerConfig.Rejoin).
// Returns the final parameters of whichever incarnation finished the run and
// whether the restart leg actually ran (false when the victim outran the
// kill — possible on tiny runs that finish before the watcher fires).
func runChurnServer(network *transport.ChanNetwork, ep transport.Endpoint, scfg ServerConfig,
	churn *LiveChurn, wrap func(transport.Endpoint, *metrics.NodeMetrics) (transport.Endpoint, error)) (tensor.Vector, bool, error) {

	vm := scfg.Metrics
	if vm == nil {
		// The kill trigger watches the live step counter, so the victim
		// always runs with a handle even when the deployment has no registry.
		vm = &metrics.NodeMetrics{}
		scfg.Metrics = vm
		network.SetNodeMetrics(scfg.ID, vm)
	}
	scfg.Checkpoint = &CheckpointSpec{Dir: churn.Dir, Every: churn.CheckpointEvery}

	sep, err := wrap(ep, vm)
	if err != nil {
		return nil, false, err
	}
	done := make(chan struct{})
	var (
		firstTheta tensor.Vector
		firstErr   error
	)
	go func() {
		defer close(done)
		firstTheta, firstErr = RunServer(sep, scfg)
	}()

	// Kill trigger: poll the victim's live step counter, bounded by the
	// worst-case time the quorum discipline allows for reaching the kill
	// step (one full timeout per step).
	//lint:allow-clock the kill deadline bounds a wall-clock wait, like quorum timeouts
	deadline := time.Now().Add(time.Duration(churn.KillAtStep+1) * scfg.Timeout)
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for vm.LastStep() < churn.KillAtStep {
		//lint:allow-clock see deadline above
		if time.Now().After(deadline) {
			network.Unregister(scfg.ID)
			sep.Close()
			<-done
			return nil, false, fmt.Errorf("cluster: churn victim %s never reached kill step %d", scfg.ID, churn.KillAtStep)
		}
		select {
		case <-done:
			// The run ended before the kill fired (tiny runs, or a failure
			// elsewhere tearing the network down): no restart to perform.
			return firstTheta, false, firstErr
		case <-tick.C:
		}
	}
	network.Unregister(scfg.ID) // the crash: mailbox dies, ID is released
	sep.Close()
	<-done
	if firstErr == nil {
		// The victim outran the kill and finished the whole run; its final
		// parameters already stand.
		return firstTheta, false, nil
	}

	// Recovery: same ID, newest checkpoint, median rejoin.
	ckpt, err := LoadCheckpoint(churn.Dir, scfg.ID)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: churn restart of %s: %w", scfg.ID, err)
	}
	ep2, err := network.Register(scfg.ID)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: churn restart of %s: %w", scfg.ID, err)
	}
	network.SetNodeMetrics(scfg.ID, vm)
	rcfg := scfg
	rcfg.Restore = &ckpt
	rcfg.Rejoin = true
	sep2, err := wrap(ep2, vm)
	if err != nil {
		return nil, false, err
	}
	defer sep2.Close()
	theta, err := RunServer(sep2, rcfg)
	if err != nil {
		return nil, true, fmt.Errorf("cluster: churned server %s failed after restart: %w", scfg.ID, err)
	}
	return theta, true, nil
}

// AdversaryViews builds the shared omniscient views for an in-process
// deployment — one per message class, and only when some Byzantine node can
// actually use one (publishing costs honest nodes a clone per step
// otherwise). The TCP-in-one-process runtime shares them too; true
// multi-process deployments run without (see ServerConfig.View).
func AdversaryViews(fServers int, serverAttacks map[int]attack.Attack,
	fWorkers int, workerAttacks map[int]attack.Attack) (serverView, workerView *attack.SharedView) {
	if anyOmniscient(serverAttacks) {
		serverView = attack.NewSharedView(fServers, len(serverAttacks))
	}
	if anyOmniscient(workerAttacks) {
		workerView = attack.NewSharedView(fWorkers, len(workerAttacks))
	}
	return serverView, workerView
}

func anyOmniscient(attacks map[int]attack.Attack) bool {
	for _, a := range attacks {
		if _, ok := a.(attack.Omniscient); ok {
			return true
		}
	}
	return false
}
