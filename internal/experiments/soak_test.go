package experiments

import (
	"strings"
	"testing"
)

// TestSoakSmoke runs the abbreviated soak (the CI gate) end to end: a
// 12-node live cluster with an equivocating server, flaky faults, and
// drop-oldest mailboxes must stay live, keep every scraped counter
// monotonic, and finish inside the scale experiment's heap budget.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 12-node live cluster")
	}
	r, err := Soak(Scale{Steps: 10, Batch: 8, SmallBatch: 4, Examples: 300, Seed: 42}, true, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass() {
		t.Fatalf("soak smoke failed:\n%s", r.Format())
	}
	out := r.Format()
	for _, want := range []string{
		"peak heap within budget: yes",
		"soak verdict: PASS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing the greppable line %q:\n%s", want, out)
		}
	}
	if r.Scrapes == 0 {
		t.Fatal("the self-scraper never ran")
	}
	if r.StepsTotal == 0 {
		t.Fatal("registry saw no completed steps")
	}
}
