package experiments

import (
	"strings"
	"testing"
)

// TestSoakSmoke runs the abbreviated soak (the CI gate) end to end: a
// 12-node live cluster with an equivocating server, flaky faults, and
// drop-oldest mailboxes must stay live, keep every scraped counter
// monotonic, and finish inside the scale experiment's heap budget.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 12-node live cluster")
	}
	r, err := Soak(Scale{Steps: 10, Batch: 8, SmallBatch: 4, Examples: 300, Seed: 42}, SoakOptions{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass() {
		t.Fatalf("soak smoke failed:\n%s", r.Format())
	}
	out := r.Format()
	for _, want := range []string{
		"peak heap within budget: yes",
		"soak verdict: PASS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing the greppable line %q:\n%s", want, out)
		}
	}
	if r.Scrapes == 0 {
		t.Fatal("the self-scraper never ran")
	}
	if r.StepsTotal == 0 {
		t.Fatal("registry saw no completed steps")
	}
	if r.ChurnRequested || strings.Contains(out, "churn:") {
		t.Fatal("churn surfaced without being requested")
	}
}

// TestSoakChurnSmoke runs the soak's kill/restart sub-mode at smoke scale:
// an honest server is killed a quarter of the way into the run and rejoins
// from its newest checkpoint under the same ID, and the verdict must report
// both the restart and the unbroken counter monotonicity across the outage.
func TestSoakChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 12-node live cluster with a kill/restart cycle")
	}
	r, err := Soak(Scale{Steps: 10, Batch: 8, SmallBatch: 4, Examples: 300, Seed: 42}, SoakOptions{Smoke: true, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.ChurnRequested || r.ChurnKillStep <= 0 {
		t.Fatalf("churn options not threaded into the result: %+v", r)
	}
	if !r.ChurnRestarted {
		t.Fatalf("soak churn never killed and restarted the victim:\n%s", r.Format())
	}
	if r.MonotonicViolations != 0 {
		t.Fatalf("counters regressed across the restart: %d violations", r.MonotonicViolations)
	}
	if !r.Pass() {
		t.Fatalf("soak churn smoke failed:\n%s", r.Format())
	}
	out := r.Format()
	for _, want := range []string{
		"restarted via checkpoint+rejoin: yes",
		"soak verdict: PASS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing the greppable line %q:\n%s", want, out)
		}
	}
}
