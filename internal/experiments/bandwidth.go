package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/gar"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// The bandwidth experiment prices the gradient-compression subsystem on
// both axes the paper's Figure 4 cares about: how many bytes one protocol
// step actually moves per link under each scheme (exact, machine-
// independent — this is what BENCH_wire.json pins), and what the lossy
// wire does to convergence under each GAR × attack pairing (Fig-4-style
// cells on the fast Blob workload). Serialization-bound steps/sec rides
// along from the same timed encode→frame→decode loop, so the table shows
// whether a scheme buys its byte reduction with codec time.

// bandwidthDims are the payload dimensions measured: the tiny harness CNN
// and the paper's full 1,756,426-parameter Table-1 model.
var bandwidthDims = []int{2726, 1756426}

// bandwidthSchemes are the compression specs compared against raw framing.
var bandwidthSchemes = []string{"none", "float32", "delta", "topk:k=0.01"}

// bandwidthShard is the chunk-streaming shard size the wire rows assume —
// the same 2^16-coordinate default the memory experiment uses, so the
// compressed frames measured here are exactly the frames a sharded live
// deployment ships.
const bandwidthShard = 1 << 16

// BandwidthRow is one (dimension, scheme) wire measurement.
type BandwidthRow struct {
	// Dim is the logical vector dimension.
	Dim int `json:"dim"`
	// Scheme is the compression spec.
	Scheme string `json:"scheme"`
	// Shards is the number of chunk frames one vector becomes.
	Shards int `json:"shards"`
	// WireBytes is the total wire volume of one full-dimension vector (all
	// shard frames, headers included) at a steady-state step. Exact and
	// machine-independent: this is the field BENCH_wire.json comparisons
	// enforce.
	WireBytes int `json:"wire_bytes"`
	// RawBytes is the same vector under plain framing.
	RawBytes int `json:"raw_bytes"`
	// Reduction is RawBytes / WireBytes.
	Reduction float64 `json:"reduction"`
	// MBps is the logical (raw-equivalent) megabytes per second one core
	// moves through encode → frame → decode. Timing-based, advisory.
	MBps float64 `json:"mbps"`
	// StepsPerSec is the serialization-bound step ceiling at the paper's
	// (6 servers, 18 workers) testbed shape. Timing-based, advisory.
	StepsPerSec float64 `json:"steps_per_sec"`
}

// BandwidthCell is one (scheme, rule, attack) convergence outcome.
type BandwidthCell struct {
	// Scheme, Rule and Attack identify the cell; Attack "none" is the
	// attack-free baseline.
	Scheme, Rule, Attack string
	// FinalAccuracy is the run's final test accuracy (0 when Failed).
	FinalAccuracy float64
	// Failed is empty for a completed run, otherwise the breakdown class
	// (same taxonomy as the scenario matrix).
	Failed string
}

// BandwidthResult holds the wire rows and the convergence grid.
type BandwidthResult struct {
	Rows  []BandwidthRow
	Cells []BandwidthCell
}

// bandwidthRules and bandwidthAttacks span the Fig-4-style convergence
// grid: the headline robust rules under the attack-free baseline and the
// strongest omniscient attack.
var (
	bandwidthRules   = []string{"multi-krum", "coordinate-median"}
	bandwidthAttacks = []string{"none", "alie:z=1.5"}
)

// Bandwidth measures each compression scheme's wire volume and codec rate
// at both dimensions, then runs the convergence grid. The byte counts are
// deterministic; the rates are machine-dependent; the accuracy cells are
// bit-identical at any parallelism for a fixed seed.
func Bandwidth(s Scale) (*BandwidthResult, error) {
	rows, err := WireRows(s)
	if err != nil {
		return nil, err
	}
	cells, err := bandwidthGrid(s)
	if err != nil {
		return nil, err
	}
	return &BandwidthResult{Rows: rows, Cells: cells}, nil
}

// WireRows measures only the wire rows — the exact byte counts the
// committed BENCH_wire.json pins plus the advisory codec rates — without
// running the convergence grid.
func WireRows(s Scale) ([]BandwidthRow, error) {
	var rows []BandwidthRow
	rng := tensor.NewRNG(s.Seed)
	for _, dim := range bandwidthDims {
		vec := rng.NormVec(make(tensor.Vector, dim), 0, 1)
		for _, spec := range bandwidthSchemes {
			row, err := measureBandwidth(spec, vec)
			if err != nil {
				return nil, fmt.Errorf("bandwidth: %w", err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// shardSpans cuts [0, dim) into bandwidthShard-sized coordinate spans.
func shardSpans(dim int) [][2]int {
	var spans [][2]int
	for off := 0; off < dim; off += bandwidthShard {
		end := off + bandwidthShard
		if end > dim {
			end = dim
		}
		spans = append(spans, [2]int{off, end})
	}
	return spans
}

// shardMeta is the chunk extension for shard i of count n (zero value —
// whole-vector framing — when the vector fits one frame).
func shardMeta(i, n, off int) transport.ShardMeta {
	if n == 1 {
		return transport.ShardMeta{}
	}
	return transport.ShardMeta{Index: i, Count: n, Offset: off}
}

// measureBandwidth prices one (scheme, vector) pair: exact steady-state
// wire bytes, then a timed encode→frame→decode loop for the advisory rates.
func measureBandwidth(spec string, vec tensor.Vector) (BandwidthRow, error) {
	cfg, err := compress.ParseSpec(spec)
	if err != nil {
		return BandwidthRow{}, err
	}
	dim := len(vec)
	spans := shardSpans(dim)
	row := BandwidthRow{Dim: dim, Scheme: spec, Shards: len(spans)}

	// Raw framing volume: every shard as a plain float64 frame.
	for i, sp := range spans {
		m := transport.Message{From: "wrk12", Kind: transport.KindGradient, Step: 1,
			Vec: vec[sp[0]:sp[1]], Shard: shardMeta(i, len(spans), sp[0])}
		row.RawBytes += transport.EncodedSize(&m)
	}

	enc := compress.NewEncoder(cfg)
	dec := compress.NewDecoder()
	// roundTrip ships the whole vector once at the given step, returning
	// the wire bytes. Encoder and decoder advance in lockstep, exactly as a
	// connection's paired codec state does.
	frame := make([]byte, 0, 9*bandwidthShard)
	var out transport.Message
	roundTrip := func(step int) (int, error) {
		total := 0
		for i, sp := range spans {
			m := transport.Message{From: "wrk12", Kind: transport.KindGradient, Step: step,
				Vec: vec[sp[0]:sp[1]], Shard: shardMeta(i, len(spans), sp[0])}
			if err := transport.CompressMessage(enc, &m); err != nil {
				return 0, err
			}
			frame, err = transport.AppendMessage(frame[:0], &m)
			if err != nil {
				return 0, err
			}
			total += len(frame)
			if _, err := transport.DecodeMessage(frame, &out); err != nil {
				return 0, err
			}
			if err := transport.DecompressMessage(dec, &out); err != nil {
				return 0, err
			}
		}
		return total, nil
	}

	// Step 0 is the delta keyframe; step 1 is the steady state whose bytes
	// the committed BENCH_wire.json pins.
	if _, err := roundTrip(0); err != nil {
		return BandwidthRow{}, err
	}
	if row.WireBytes, err = roundTrip(1); err != nil {
		return BandwidthRow{}, err
	}
	row.Reduction = float64(row.RawBytes) / float64(row.WireBytes)

	// Advisory codec rate over the logical (raw-equivalent) volume. Steps
	// keep advancing so delta streams pay their keyframe cadence honestly.
	reps := codecReps(dim)
	step := 2
	sec := measureCodec(reps, func(reps int) {
		for i := 0; i < reps; i++ {
			if _, err := roundTrip(step); err != nil {
				panic(err)
			}
			step++
		}
	})
	logicalMB := float64(8*dim) / 1e6
	row.MBps = logicalMB / sec
	n, w := 6, 18 // the paper's testbed shape
	msgs := n*w + w*n + n*(n-1)
	row.StepsPerSec = 1 / (float64(msgs) * sec)
	return row, nil
}

// bandwidthGrid runs the Fig-4-style convergence cells: every (scheme,
// rule, attack) triple as an independent deterministic simulation on the
// Blob workload, concurrent on the shared pool.
func bandwidthGrid(s Scale) ([]BandwidthCell, error) {
	var cells []BandwidthCell
	for _, spec := range bandwidthSchemes {
		for _, rule := range bandwidthRules {
			for _, att := range bandwidthAttacks {
				cells = append(cells, BandwidthCell{Scheme: spec, Rule: rule, Attack: att})
			}
		}
	}
	// Resolve specs up front so typos fail loudly.
	for _, spec := range bandwidthSchemes {
		if _, err := compress.ParseSpec(spec); err != nil {
			return nil, fmt.Errorf("bandwidth: %w", err)
		}
	}
	for _, r := range bandwidthRules {
		if _, err := gar.FromName(r, core.PaperByzWorkers); err != nil {
			return nil, fmt.Errorf("bandwidth: %w", err)
		}
	}
	for _, a := range bandwidthAttacks {
		if a == "none" {
			continue
		}
		if _, err := attack.FromSpec(a, s.Seed); err != nil {
			return nil, fmt.Errorf("bandwidth: %w", err)
		}
	}

	tasks := make([]func() error, len(cells))
	for i := range cells {
		cell := &cells[i]
		tasks[i] = func() error {
			runBandwidthCell(s, cell)
			return nil // breakdowns are results, not errors
		}
	}
	if err := parallel.Do(tasks...); err != nil {
		return nil, err
	}
	return cells, nil
}

// runBandwidthCell executes one convergence cell, writing the outcome in.
func runBandwidthCell(s Scale, cell *BandwidthCell) {
	comp, _ := compress.ParseSpec(cell.Scheme)
	rule, _ := gar.FromName(cell.Rule, core.PaperByzWorkers)

	w := core.BlobWorkload(s.Examples, s.Seed)
	cfg := core.Config{
		Mode:  core.ModeGuanYu,
		Model: w.Model, Train: w.Train, Test: w.Test,
		NumServers: core.PaperServers, FServers: 0,
		NumWorkers: core.PaperWorkers, FWorkers: core.PaperByzWorkers,
		Steps: s.Steps, Batch: s.SmallBatch,
		Rule:        rule,
		Compression: comp,
		Seed:        s.Seed,
	}
	if cell.Attack != "none" {
		mk, _ := attack.FromSpec(cell.Attack, s.Seed+500)
		cfg = core.WithByzantineWorkers(cfg, core.PaperByzWorkers, mk)
	}

	res, err := core.Run(cfg)
	switch {
	case err != nil && strings.Contains(err.Error(), "quorum"):
		cell.Failed = "no-quorum"
	case err != nil:
		cell.Failed = "error"
	case !tensor.IsFinite(res.Final):
		cell.Failed = "non-finite"
	default:
		cell.FinalAccuracy = res.FinalAccuracy
	}
}

// Format renders the wire table and the convergence grid.
func (r *BandwidthResult) Format() string {
	var b strings.Builder
	b.WriteString("# Bandwidth: wire volume and codec rate per compression scheme\n")
	fmt.Fprintf(&b, "(shard %d coords; bytes are exact steady-state volume of one vector, all frames;\n", bandwidthShard)
	b.WriteString(" MB/s is logical raw-equivalent volume through encode→frame→decode on one core;\n")
	b.WriteString(" steps/s is the serialization ceiling at the paper's 6×18 testbed)\n")
	fmt.Fprintf(&b, "%-9s %-12s %-7s %-12s %-12s %-10s %-10s %-10s\n",
		"dim", "scheme", "shards", "wire bytes", "raw bytes", "reduction", "MB/s", "steps/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9d %-12s %-7d %-12d %-12d %-10s %-10.0f %-10.2f\n",
			row.Dim, row.Scheme, row.Shards, row.WireBytes, row.RawBytes,
			fmt.Sprintf("%.2fx", row.Reduction), row.MBps, row.StepsPerSec)
	}

	b.WriteString("\n## Convergence under the lossy wire: final accuracy by scheme (GAR × attack)\n")
	fmt.Fprintf(&b, "(%d byz workers of %d when attacked; %d servers, all honest)\n",
		core.PaperByzWorkers, core.PaperWorkers, core.PaperServers)
	fmt.Fprintf(&b, "%-20s %-14s", "rule", "attack")
	for _, spec := range bandwidthSchemes {
		fmt.Fprintf(&b, " %-12s", spec)
	}
	b.WriteByte('\n')
	for _, rule := range bandwidthRules {
		for _, att := range bandwidthAttacks {
			fmt.Fprintf(&b, "%-20s %-14s", rule, att)
			for _, spec := range bandwidthSchemes {
				c := r.cell(spec, rule, att)
				if c == nil {
					fmt.Fprintf(&b, " %-12s", "-")
				} else if c.Failed != "" {
					fmt.Fprintf(&b, " %-12s", "break:"+c.Failed)
				} else {
					fmt.Fprintf(&b, " %-12.4f", c.FinalAccuracy)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func (r *BandwidthResult) cell(scheme, rule, att string) *BandwidthCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Scheme == scheme && c.Rule == rule && c.Attack == att {
			return c
		}
	}
	return nil
}

// WireBenchJSON serialises the wire rows for committing as BENCH_wire.json.
// Byte counts are exact; the MB/s and steps/s fields are advisory and
// ignored by CheckWireBench.
func WireBenchJSON(rows []BandwidthRow) ([]byte, error) {
	out, err := json.MarshalIndent(struct {
		Note string         `json:"note"`
		Rows []BandwidthRow `json:"rows"`
	}{
		Note: "wire_bytes/raw_bytes are exact and enforced by -wire-check; mbps/steps_per_sec are machine-dependent and advisory",
		Rows: rows,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CheckWireBench compares freshly measured rows against a committed
// BENCH_wire.json: every committed (dim, scheme) row must exist with
// identical shard count and byte volumes. Rates are not compared.
func CheckWireBench(committed []byte, rows []BandwidthRow) error {
	var doc struct {
		Rows []BandwidthRow `json:"rows"`
	}
	if err := json.Unmarshal(committed, &doc); err != nil {
		return fmt.Errorf("bandwidth: bad committed bench file: %w", err)
	}
	if len(doc.Rows) == 0 {
		return fmt.Errorf("bandwidth: committed bench file has no rows")
	}
	index := make(map[string]BandwidthRow, len(rows))
	for _, r := range rows {
		index[fmt.Sprintf("%d/%s", r.Dim, r.Scheme)] = r
	}
	for _, want := range doc.Rows {
		key := fmt.Sprintf("%d/%s", want.Dim, want.Scheme)
		got, ok := index[key]
		if !ok {
			return fmt.Errorf("bandwidth: committed row %s no longer measured", key)
		}
		if got.WireBytes != want.WireBytes || got.RawBytes != want.RawBytes || got.Shards != want.Shards {
			return fmt.Errorf("bandwidth: %s drifted from committed numbers: wire %d→%d, raw %d→%d, shards %d→%d (regenerate BENCH_wire.json if the wire format changed intentionally)",
				key, want.WireBytes, got.WireBytes, want.RawBytes, got.RawBytes, want.Shards, got.Shards)
		}
	}
	return nil
}
