package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"time"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// The wire-throughput experiment prices the transport hot path: every
// GuanYu step ships O(n·n̄) full-dimension vectors, so the codec's
// encode+decode rate is the ceiling on live steps/sec long before the
// network or the arithmetic saturates. The experiment measures the binary
// frame codec (transport/codec.go) against the retired reflection-based
// gob framing on the same payloads and derives the serialization-bound
// step rate for representative cluster shapes — codec cost only; network
// transfer and gradient compute are deliberately excluded, so the numbers
// are the protocol's serialization ceiling, not an end-to-end forecast.

// throughputDims are the payload dimensions measured: the tiny harness CNN
// the CI-scale experiments train, and the paper's full 1,756,426-parameter
// Table-1 model.
var throughputDims = []int{2726, 1756426}

// throughputShapes are the (servers, workers) deployments priced — the
// paper's testbed shape (6, 18) plus two smaller steps toward it.
var throughputShapes = [][2]int{{4, 8}, {6, 12}, {6, 18}}

// ThroughputRow is one (cluster shape, payload dimension) measurement.
type ThroughputRow struct {
	// Servers and Workers give the deployment shape n, n̄.
	Servers, Workers int
	// Dim is the payload dimension (coordinates per message).
	Dim int
	// MsgsPerStep counts the full-dimension messages one protocol step
	// moves: n·n̄ parameter broadcasts, n̄·n gradient broadcasts, and the
	// n·(n−1) contraction-round exchange.
	MsgsPerStep int
	// MBPerStep is the binary wire volume of one step, in megabytes.
	MBPerStep float64
	// GobMBps and BinMBps are measured encode+decode throughputs (payload
	// megabytes per second through one core).
	GobMBps, BinMBps float64
	// GobStepsPerSec and BinStepsPerSec are the serialization-bound step
	// rates 1 / (MsgsPerStep · secPerMsg) for each codec.
	GobStepsPerSec, BinStepsPerSec float64
	// Speedup is BinMBps / GobMBps.
	Speedup float64
}

// codecReps sizes a measurement batch: enough messages that per-trial
// setup (encoder construction, buffer reset) amortises away, without
// making the paper-dimension rows take seconds per trial.
func codecReps(dim int) int {
	reps := 4_000_000 / dim
	if reps < 4 {
		reps = 4
	}
	return reps
}

// measureCodec times fn (reps encode+decode passes over one message) and
// returns seconds per message, taking the best of three trials so a
// scheduler hiccup cannot masquerade as codec cost.
func measureCodec(reps int, fn func(reps int)) float64 {
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		fn(reps)
		if sec := time.Since(start).Seconds() / float64(reps); trial == 0 || sec < best {
			best = sec
		}
	}
	return best
}

// Throughput measures the wire codecs and derives the serialization-bound
// protocol ceiling for each cluster shape. Timing-based by nature: numbers
// vary with the machine, the comparisons (binary vs gob, shape scaling) do
// not.
func Throughput(s Scale) ([]ThroughputRow, error) {
	rng := tensor.NewRNG(s.Seed)
	rows := make([]ThroughputRow, 0, len(throughputDims)*len(throughputShapes))
	for _, dim := range throughputDims {
		msg := transport.Message{
			From: "wrk12",
			Kind: transport.KindGradient,
			Step: 7,
			Vec:  rng.NormVec(make(tensor.Vector, dim), 0, 1),
		}
		wireBytes := transport.EncodedSize(&msg)
		reps := codecReps(dim)

		// Binary: reused frame buffer, reused decode target — the steady
		// state of a long-lived connection (see the codec's ownership
		// contract).
		frame, err := transport.AppendMessage(nil, &msg)
		if err != nil {
			return nil, fmt.Errorf("throughput: %w", err)
		}
		var out transport.Message
		binSec := measureCodec(reps, func(reps int) {
			for i := 0; i < reps; i++ {
				frame, _ = transport.AppendMessage(frame[:0], &msg)
				if _, err := transport.DecodeMessage(frame, &out); err != nil {
					panic(err)
				}
			}
		})

		// Gob: one persistent encoder/decoder pair per stream, exactly as
		// the retired TCP transport ran it (type descriptors amortised). The
		// stream buffer is allocated once OUTSIDE the timed region so
		// bytes.Buffer growth and its memclr — artefacts of measuring in
		// memory rather than on a socket — are not billed to gob.
		var gobBuf bytes.Buffer
		gobBuf.Grow(reps * (wireBytes + 256))
		gobSec := measureCodec(reps, func(reps int) {
			gobBuf.Reset()
			enc := gob.NewEncoder(&gobBuf)
			for i := 0; i < reps; i++ {
				if err := enc.Encode(&msg); err != nil {
					panic(err)
				}
			}
			dec := gob.NewDecoder(&gobBuf)
			for i := 0; i < reps; i++ {
				var m transport.Message
				if err := dec.Decode(&m); err != nil {
					panic(err)
				}
			}
		})

		mb := float64(wireBytes) / 1e6
		for _, shape := range throughputShapes {
			n, w := shape[0], shape[1]
			msgs := n*w + w*n + n*(n-1)
			rows = append(rows, ThroughputRow{
				Servers: n, Workers: w, Dim: dim,
				MsgsPerStep:    msgs,
				MBPerStep:      float64(msgs) * mb,
				GobMBps:        mb / gobSec,
				BinMBps:        mb / binSec,
				GobStepsPerSec: 1 / (float64(msgs) * gobSec),
				BinStepsPerSec: 1 / (float64(msgs) * binSec),
				Speedup:        gobSec / binSec,
			})
		}
	}
	return rows, nil
}

// FormatThroughput renders the wire-throughput table.
func FormatThroughput(rows []ThroughputRow) string {
	var b strings.Builder
	b.WriteString("# Wire throughput: serialization-bound protocol ceiling, gob vs binary codec\n")
	b.WriteString("(one core, encode+decode, per-step volume = n·n̄ + n̄·n + n·(n−1) messages)\n")
	fmt.Fprintf(&b, "%-9s %-8s %-9s %-10s %-9s %-10s %-10s %-12s %-12s %-8s\n",
		"dim", "servers", "workers", "msgs/step", "MB/step",
		"gob MB/s", "bin MB/s", "gob steps/s", "bin steps/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9d %-8d %-9d %-10d %-9.2f %-10.0f %-10.0f %-12.2f %-12.2f %-8s\n",
			r.Dim, r.Servers, r.Workers, r.MsgsPerStep, r.MBPerStep,
			r.GobMBps, r.BinMBps, r.GobStepsPerSec, r.BinStepsPerSec,
			fmt.Sprintf("%.1fx", r.Speedup))
	}
	return b.String()
}
