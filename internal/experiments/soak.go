package experiments

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gar"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/transport"
)

// The soak experiment is the ops-surface counterpart of the scale sweep:
// instead of growing the population, it holds one live deployment under
// continuous adversity — the "flaky" fault profile on every link, an
// equivocating Byzantine server, bounded drop-oldest mailboxes — for far
// more steps than any functional test, while a scraper goroutine reads the
// same live metrics registry a /metrics listener would and checks three
// invariants the exposition promises: every counter is monotonic across
// scrapes (no torn or regressing reads), the cluster keeps making quorum
// progress until every node reports done, and the sampled peak heap stays
// under the scale experiment's derived O(n·cap·frame) budget.

// Soak sizing. The smoke deployment is the acceptance shape: 12 nodes — 6
// parameter servers (the last one actually equivocating) and 6 workers —
// with full runs adding 6 more workers and an order of magnitude more
// steps. Quorums are declared with slack (f = 0 → q = 3 per role, the
// chaos test's discipline): a dropped frame is never retransmitted, so a
// zero-slack quorum would deadlock on the first lost link, and the soak
// injects losses for thousands of steps.
var (
	soakServers      = 6
	soakWorkers      = 12
	soakSmokeWorkers = 6
	soakQuorum       = 3
	soakSteps        = 2000
	soakSmokeSteps   = 150
	soakTimeout      = 2 * time.Minute
	soakScrapeEvery  = 50 * time.Millisecond
)

// SoakOptions selects a soak run's mode beyond its Scale.
type SoakOptions struct {
	// Smoke selects the CI sizing (fewer workers, far fewer steps).
	Smoke bool
	// MetricsAddr, when non-empty, serves /metrics + /healthz on this
	// address for the run's duration plus Linger afterwards.
	MetricsAddr string
	// Linger keeps the MetricsAddr listener up this long after the run, so
	// external scrapers can read the final counters.
	Linger time.Duration
	// Churn arms the kill/restart cycle: one honest server checkpoints,
	// is killed a quarter of the way into the run, and rejoins from its
	// newest checkpoint under the same ID — while the scraper keeps
	// checking counter monotonicity straight through the outage.
	Churn bool
}

// SoakResult is one soak run's measurements and verdicts.
type SoakResult struct {
	// Servers + Workers = Nodes, the deployment population.
	Servers, Workers, Nodes int
	// Steps is the number of learning steps every node completed.
	Steps int
	// Elapsed is the run's wall-clock time (excluding the linger window).
	Elapsed time.Duration
	// StepsPerSec is Steps over Elapsed.
	StepsPerSec float64
	// Scrapes is how many times the self-scraper snapshotted the live
	// registry during the run.
	Scrapes int
	// MonotonicViolations counts (node, counter) pairs observed to
	// decrease between consecutive scrapes — always 0 for a correct
	// atomic registry.
	MonotonicViolations int
	// AllDone reports that every node's handle reached MarkDone — the
	// liveness verdict.
	AllDone bool
	// Healthy is the registry's own post-run health check (no node
	// stalled).
	Healthy bool
	// DroppedOverflow and DroppedClosed are the run's mailbox-shed and
	// after-shutdown totals, as surfaced by the live runtime.
	DroppedOverflow, DroppedClosed uint64
	// DroppedFuture and DroppedMalformed total the collectors' horizon
	// and shape rejections across all nodes, read from the registry.
	DroppedFuture, DroppedMalformed uint64
	// StepsTotal sums guanyu_steps_total across nodes (= Nodes × Steps
	// when every node finished).
	StepsTotal uint64
	// FinalAccuracy is the final median model's test accuracy.
	FinalAccuracy float64
	// PeakHeapBytes is the sampled heap high-water mark during the run;
	// HeapBudgetBytes is the scale experiment's derived bound for this
	// population and mailbox.
	PeakHeapBytes, HeapBudgetBytes uint64
	// WithinBudget is PeakHeapBytes ≤ HeapBudgetBytes.
	WithinBudget bool
	// PeakRSSBytes is the process VmHWM after the run (0 where
	// /proc/self/status is unavailable).
	PeakRSSBytes uint64
	// ChurnRequested records that the run armed the kill/restart cycle;
	// ChurnKillStep is the step the victim was scheduled to die at.
	ChurnRequested bool
	ChurnKillStep  int
	// ChurnRestarted reports that the victim was actually killed and came
	// back through checkpoint + median rejoin (the live runtime's verdict).
	ChurnRestarted bool
}

// Pass is the overall soak verdict: monotone counters, full liveness,
// bounded memory — and, when churn was armed, an actual kill/restart.
func (r *SoakResult) Pass() bool {
	if r.ChurnRequested && !r.ChurnRestarted {
		return false
	}
	return r.MonotonicViolations == 0 && r.AllDone && r.Healthy && r.WithinBudget
}

// Format renders the soak report, ending in the greppable verdict lines CI
// keys on.
func (r *SoakResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Soak: %d nodes (%d servers incl. 1 equivocator, %d workers, quorum %d), %d steps, flaky faults, drop-oldest mailboxes cap=%d\n",
		r.Nodes, r.Servers, r.Workers, soakQuorum, r.Steps, transport.DefaultMailboxCap)
	fmt.Fprintf(&b, "elapsed: %.1fs  steps/sec: %.1f  final accuracy: %.3f\n",
		r.Elapsed.Seconds(), r.StepsPerSec, r.FinalAccuracy)
	fmt.Fprintf(&b, "registry scrapes: %d  monotonicity violations: %d\n",
		r.Scrapes, r.MonotonicViolations)
	fmt.Fprintf(&b, "dropped: overflow=%d closed=%d future=%d malformed=%d  steps_total=%d\n",
		r.DroppedOverflow, r.DroppedClosed, r.DroppedFuture, r.DroppedMalformed, r.StepsTotal)
	fmt.Fprintf(&b, "liveness: all nodes done: %s  health: %s\n",
		yesNo(r.AllDone), yesNo(r.Healthy))
	if r.ChurnRequested {
		fmt.Fprintf(&b, "churn: victim killed at step %d, restarted via checkpoint+rejoin: %s\n",
			r.ChurnKillStep, yesNo(r.ChurnRestarted))
	}
	fmt.Fprintf(&b, "peak heap %s, budget %s (RSS high-water %s)\n",
		formatBytes(int(r.PeakHeapBytes)), formatBytes(int(r.HeapBudgetBytes)),
		formatBytes(int(r.PeakRSSBytes)))
	fmt.Fprintf(&b, "peak heap within budget: %s\n", yesNo(r.WithinBudget))
	verdict := "FAIL"
	if r.Pass() {
		verdict = "PASS"
	}
	fmt.Fprintf(&b, "soak verdict: %s\n", verdict)
	return b.String()
}

func yesNo(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

// soakScraper polls a live registry the way an external Prometheus scraper
// would and verifies that every counter is monotonic between reads.
type soakScraper struct {
	reg        *metrics.Registry
	stop, done chan struct{}

	mu         sync.Mutex
	scrapes    int
	violations int
	prev       map[string][]uint64
}

func startSoakScraper(reg *metrics.Registry) *soakScraper {
	s := &soakScraper{reg: reg, stop: make(chan struct{}),
		done: make(chan struct{}), prev: make(map[string][]uint64)}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(soakScrapeEvery)
		defer tick.Stop()
		for {
			s.scrapeOnce()
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

func (s *soakScraper) scrapeOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scrapes++
	for _, snap := range s.reg.Snapshot() {
		cur := []uint64{snap.DroppedFuture, snap.DroppedMalformed,
			snap.ForgedDropped, snap.DroppedUnnegotiated, snap.DroppedOverflow,
			snap.CourierDropped, snap.DroppedClosed, snap.Steps}
		if prev, ok := s.prev[snap.ID]; ok {
			for i := range cur {
				if cur[i] < prev[i] {
					s.violations++
				}
			}
		}
		s.prev[snap.ID] = cur
	}
}

// Stop halts the scraper after one final scrape and returns (scrapes,
// monotonicity violations).
func (s *soakScraper) Stop() (int, int) {
	close(s.stop)
	<-s.done
	s.scrapeOnce()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrapes, s.violations
}

// Soak runs the long-haul live deployment under continuous fault injection
// with an equivocating server, self-scraping its metrics registry
// throughout. opts.Smoke selects the CI sizing. When opts.MetricsAddr is
// non-empty a /metrics + /healthz listener serves the same registry for the
// duration of the run and for opts.Linger afterwards, so external scrapers
// (CI's curl loop, a dashboard) can read the final counters before the
// process exits. opts.Churn additionally kills and restarts one honest
// server mid-run, turning the soak into a crash-recovery endurance check.
func Soak(s Scale, opts SoakOptions) (*SoakResult, error) {
	workers, steps := soakWorkers, soakSteps
	if opts.Smoke {
		workers, steps = soakSmokeWorkers, soakSmokeSteps
	}
	nodes := soakServers + workers
	w := core.BlobWorkload(s.Examples, s.Seed)
	dim := w.Model.ParamCount()
	mbox := DefaultScaleMailbox

	fc, err := transport.FaultByName("flaky", nil, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	reg := metrics.NewRegistry()
	if opts.MetricsAddr != "" {
		srv, err := metrics.Serve(opts.MetricsAddr, reg, metrics.DefaultStallAfter)
		if err != nil {
			return nil, fmt.Errorf("soak: %w", err)
		}
		defer func() {
			// Hold the exposition up past the run so late scrapers see the
			// final counters, then tear it down.
			time.Sleep(opts.Linger)
			srv.Close()
		}()
	}

	cfg := cluster.LiveConfig{
		Model:      w.Model,
		Train:      w.Train,
		NumServers: soakServers, FServers: 0,
		NumWorkers: workers, FWorkers: 0,
		QuorumServers: soakQuorum, QuorumWorkers: soakQuorum,
		ServerAttacks: map[int]attack.Attack{
			soakServers - 1: attack.Equivocate{Std: 0.5, Seed: s.Seed},
		},
		// Median on both paths, as in the chaos test: legal at the slack
		// quorum of 3 (the Krum family would need 2f+3 inputs) and robust
		// against the equivocating server's per-receiver lies.
		Rule:      gar.Median{},
		ParamRule: gar.Median{},
		Steps:     steps,
		Batch:     s.Batch,
		Timeout:   soakTimeout,
		Seed:      s.Seed,
		Faults:    transport.NewFaultInjector(fc),
		Mailbox:   mbox,
		Metrics:   reg,
	}
	killAt := 0
	if opts.Churn {
		// Server 0 is honest (the equivocator is the last index); kill it a
		// quarter of the way in, checkpointing often enough that the newest
		// checkpoint is never more than a few steps stale at the kill.
		dir, err := os.MkdirTemp("", "guanyu-soak-ckpt-")
		if err != nil {
			return nil, fmt.Errorf("soak: %w", err)
		}
		defer os.RemoveAll(dir)
		killAt = steps / 4
		cfg.Churn = &cluster.LiveChurn{
			Server:          0,
			KillAtStep:      killAt,
			CheckpointEvery: max(1, steps/20),
			Dir:             dir,
		}
	}

	scraper := startSoakScraper(reg)
	var live *cluster.LiveResult
	elapsed, peak, err := measureRun(func() error {
		r, err := cluster.RunLive(cfg)
		live = r
		return err
	})
	scrapes, violations := scraper.Stop()
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}

	res := &SoakResult{
		Servers: soakServers, Workers: workers, Nodes: nodes,
		Steps:   steps,
		Elapsed: elapsed, StepsPerSec: float64(steps) / elapsed.Seconds(),
		Scrapes: scrapes, MonotonicViolations: violations,
		DroppedOverflow: live.DroppedOverflow,
		DroppedClosed:   live.DroppedClosed,
		ChurnRequested:  opts.Churn,
		ChurnKillStep:   killAt,
		ChurnRestarted:  live.ChurnRestarted,
		PeakHeapBytes:   peak,
		HeapBudgetBytes: scaleHeapBudget(nodes, dim, mbox),
		PeakRSSBytes:    readVmHWM(),
	}
	res.WithinBudget = res.PeakHeapBytes <= res.HeapBudgetBytes

	res.AllDone = true
	for _, snap := range reg.Snapshot() {
		if !snap.Done {
			res.AllDone = false
		}
		res.DroppedFuture += snap.DroppedFuture
		res.DroppedMalformed += snap.DroppedMalformed
		res.StepsTotal += snap.Steps
	}
	res.Healthy = reg.CheckHealth(metrics.DefaultStallAfter).Healthy

	if w.Test != nil {
		eval := w.Model.Clone()
		if err := eval.SetParamVector(live.Final); err != nil {
			return nil, fmt.Errorf("soak: %w", err)
		}
		res.FinalAccuracy = nn.Accuracy(eval, w.Test.X, w.Test.Labels)
	}
	return res, nil
}
