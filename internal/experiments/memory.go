package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/gar"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// The memory experiment prices the receive path's buffering: the
// whole-vector Collector holds O(q·d) payload bytes before aggregation can
// even start (~70 MB at the paper's 1,756,426-coordinate dimension with
// q=5), and every byte of aggregation work waits for the last byte of
// network receive — the "non-optimised low-level runtime" overhead the
// paper blames for ≈65% of GuanYu's slowdown (Section 5.3). Chunked
// streaming (transport.ShardCollector) caps the buffer at O(q·shard) and
// folds each shard into the aggregation the moment its quorum fills, so
// the receive stream and the aggregation arithmetic overlap. This
// experiment replays one identical arrival schedule through both
// collectors and reports peak buffered bytes, the receive→aggregate
// overlap, and a bit-identity check of the two aggregates.

// memoryDims are the payload dimensions measured: the tiny harness CNN and
// the paper's full Table-1 model.
var memoryDims = []int{2726, 1756426}

// memorySenders and memoryQuorum shape the replayed round: n senders
// racing into a first-q quorum — the contraction round's shape at the
// paper's server population, with the q=5 quorum the acceptance target
// uses.
const (
	memorySenders = 8
	memoryQuorum  = 5
)

// defaultShardSize picks the measured shard width when the caller passes
// none: 64 Ki coordinates (512 KiB frames) at full scale, a sixteenth of
// the dimension for models smaller than one such shard.
func defaultShardSize(dim int) int {
	if dim > 1<<16 {
		return 1 << 16
	}
	size := dim / 16
	if size < 1 {
		size = 1
	}
	return size
}

// MemoryRow is one dimension's whole-vs-sharded measurement.
type MemoryRow struct {
	// Dim is the payload dimension; ShardSize the measured shard width;
	// Shards the resulting shard count.
	Dim, ShardSize, Shards int
	// Senders and Quorum are n and q of the replayed round.
	Senders, Quorum int
	// WholePeakBytes and ShardedPeakBytes are the collectors' high-water
	// buffer marks over the identical arrival schedule.
	WholePeakBytes, ShardedPeakBytes int
	// Ratio is ShardedPeakBytes / WholePeakBytes.
	Ratio float64
	// OverlapFolds of Folds shard aggregations completed while frames were
	// still arriving (the whole-vector path overlaps nothing by
	// construction); OverlapFrac is their fraction.
	Folds, OverlapFolds int
	OverlapFrac         float64
	// BitIdentical reports that the sharded aggregate carried the exact
	// bits of the whole-vector aggregate.
	BitIdentical bool
}

// memoryFeed builds one deterministic arrival schedule: n whole vectors
// (for the Collector) and their round-robin shard interleaving (for the
// ShardCollector) — shard 0 from every sender, then shard 1, and so on,
// the steady state of n peers streaming concurrently over fair links.
func memoryFeed(rng *tensor.RNG, dim, senders int) []tensor.Vector {
	vecs := make([]tensor.Vector, senders)
	for i := range vecs {
		vecs[i] = rng.NormVec(make(tensor.Vector, dim), 0, 1)
	}
	return vecs
}

// memoryEndpoints registers one receiver and n senders on a fresh
// in-process network and returns their endpoints.
func memoryEndpoints(n int) (*transport.ChanNetwork, transport.Endpoint, []transport.Endpoint, error) {
	net := transport.NewChanNetwork(nil)
	recv, err := net.Register("recv")
	if err != nil {
		return nil, nil, nil, err
	}
	eps := make([]transport.Endpoint, n)
	for i := range eps {
		if eps[i], err = net.Register(fmt.Sprintf("s%d", i)); err != nil {
			return nil, nil, nil, err
		}
	}
	return net, recv, eps, nil
}

// Memory replays the schedule through both collectors at every measured
// dimension. shardSize overrides the per-dimension default when positive
// (the -shard flag on guanyu-bench). Peak bytes and the overlap count are
// deterministic — they derive from one FIFO arrival order — while the
// aggregates must match bit-for-bit.
func Memory(s Scale, shardSize int) ([]MemoryRow, error) {
	rng := tensor.NewRNG(s.Seed)
	rows := make([]MemoryRow, 0, len(memoryDims))
	const timeout = 30 * time.Second
	for _, dim := range memoryDims {
		size := shardSize
		if size <= 0 {
			size = defaultShardSize(dim)
		}
		if size > dim {
			size = dim
		}
		vecs := memoryFeed(rng, dim, memorySenders)

		// Whole-vector path: every sender ships its full vector; the
		// collector buffers q of them before the rule sees a single byte.
		net, recv, eps, err := memoryEndpoints(memorySenders)
		if err != nil {
			return nil, err
		}
		for i, ep := range eps {
			if err := ep.Send("recv", transport.Message{
				Kind: transport.KindPeerParams, Step: 0, Vec: vecs[i],
			}); err != nil {
				net.Close()
				return nil, err
			}
		}
		col := transport.NewCollector(recv)
		msgs, err := col.Collect(transport.KindPeerParams, 0, memoryQuorum, timeout)
		if err != nil {
			net.Close()
			return nil, fmt.Errorf("memory: whole-vector collect: %w", err)
		}
		wholePeak := col.PeakBytes()
		quorum := make([]tensor.Vector, len(msgs))
		for i, m := range msgs {
			quorum[i] = m.Vec
		}
		want, err := gar.Median{}.Aggregate(quorum)
		net.Close()
		if err != nil {
			return nil, err
		}

		// Sharded path: the same vectors as round-robin chunk frames; each
		// shard folds into the streaming median as its quorum fills, while
		// later shards are still arriving.
		layout := transport.NewShardLayout(dim, size)
		net, recv, eps, err = memoryEndpoints(memorySenders)
		if err != nil {
			return nil, err
		}
		frames := make([][]transport.Message, memorySenders)
		for i := range frames {
			frames[i] = transport.SplitMessage(transport.Message{
				Kind: transport.KindPeerParams, Step: 0, Vec: vecs[i],
			}, size)
		}
		for shard := 0; shard < layout.Count(); shard++ {
			for i, ep := range eps {
				if err := ep.Send("recv", frames[i][shard]); err != nil {
					net.Close()
					return nil, err
				}
			}
		}
		scol := transport.NewShardCollector(recv, layout)
		streamer := gar.Median{}.NewStreamer(dim)
		total := memorySenders * layout.Count()
		folds, overlap := 0, 0
		fold := func(lo, hi int, _ []string, inputs []tensor.Vector) error {
			folds++
			if scol.StoredFrames() < total {
				overlap++
			}
			return streamer.Fold(lo, hi, inputs)
		}
		if _, err := scol.Collect(transport.KindPeerParams, 0, memoryQuorum,
			nil, "", false, fold, timeout); err != nil {
			net.Close()
			return nil, fmt.Errorf("memory: sharded collect: %w", err)
		}
		got, err := streamer.Result()
		net.Close()
		if err != nil {
			return nil, err
		}

		identical := len(got) == len(want)
		for i := 0; identical && i < len(got); i++ {
			identical = math.Float64bits(got[i]) == math.Float64bits(want[i])
		}
		rows = append(rows, MemoryRow{
			Dim: dim, ShardSize: size, Shards: layout.Count(),
			Senders: memorySenders, Quorum: memoryQuorum,
			WholePeakBytes: wholePeak, ShardedPeakBytes: scol.PeakBytes(),
			Ratio:        float64(scol.PeakBytes()) / float64(wholePeak),
			Folds:        folds,
			OverlapFolds: overlap,
			OverlapFrac:  float64(overlap) / float64(folds),
			BitIdentical: identical,
		})
	}
	return rows, nil
}

// FormatMemory renders the peak-memory table.
func FormatMemory(rows []MemoryRow) string {
	var b strings.Builder
	b.WriteString("# Collector memory: whole-vector vs chunked streaming (first-q quorum, coordinate-median)\n")
	fmt.Fprintf(&b, "(n=%d senders racing into q=%d, one FIFO arrival schedule replayed through both paths)\n",
		memorySenders, memoryQuorum)
	fmt.Fprintf(&b, "%-9s %-9s %-8s %-14s %-14s %-8s %-9s %-9s\n",
		"dim", "shard", "shards", "whole peak", "sharded peak", "ratio", "overlap", "bits")
	for _, r := range rows {
		bits := "IDENTICAL"
		if !r.BitIdentical {
			bits = "DIFFER"
		}
		fmt.Fprintf(&b, "%-9d %-9d %-8d %-14s %-14s %-8.3f %-9s %-9s\n",
			r.Dim, r.ShardSize, r.Shards,
			formatBytes(r.WholePeakBytes), formatBytes(r.ShardedPeakBytes),
			r.Ratio,
			fmt.Sprintf("%d/%d", r.OverlapFolds, r.Folds), bits)
	}
	b.WriteString("expected: sharded peak ≤ 25% of whole at the paper dimension; overlap ≈ all folds; bits identical\n")
	return b.String()
}

// formatBytes renders a byte count with a binary-unit suffix.
func formatBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
