package experiments

import (
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/transport"
)

// ids is the presentation order of the experiment suite: the paper's tables
// and figures first, then the design-choice ablations.
var ids = []string{"table1", "fig3", "fig4", "table2", "overhead",
	"contraction", "quorum", "gar", "async", "noniid", "matrix", "throughput",
	"memory", "bandwidth", "scale", "soak"}

// IDs returns the experiment identifiers in presentation order.
func IDs() []string {
	out := make([]string, len(ids))
	copy(out, ids)
	return out
}

// Run executes one experiment at the given scale and writes its formatted
// tables to out. Unknown ids return an error listing the valid ones.
func Run(id string, s Scale, out io.Writer) error {
	switch id {
	case "table1":
		fmt.Fprint(out, Table1())
	case "fig3":
		r, err := Fig3(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format(s))
	case "fig4":
		r, err := Fig4(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	case "table2":
		recs, err := Table2(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, stats.FormatAlignmentTable(recs))
	case "overhead":
		r, err := Overhead(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	case "contraction":
		r, err := Contraction(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	case "quorum":
		rows, err := QuorumSweep(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, FormatQuorumSweep(rows))
	case "gar":
		rows, err := GARAblation(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, FormatGARAblation(rows))
	case "async":
		rows, err := AsyncSweep(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, FormatAsyncSweep(rows))
	case "noniid":
		rows, err := NonIID(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, FormatNonIID(rows))
	case "matrix":
		r, err := Matrix(s, DefaultMatrixSpec())
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	case "throughput":
		rows, err := Throughput(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, FormatThroughput(rows))
	case "memory":
		rows, err := Memory(s, 0)
		if err != nil {
			return err
		}
		fmt.Fprint(out, FormatMemory(rows))
	case "bandwidth":
		r, err := Bandwidth(s)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	case "scale":
		r, err := ScaleSweep(s, false, transport.MailboxConfig{})
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	case "soak":
		r, err := Soak(s, SoakOptions{})
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	default:
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return nil
}
