package experiments

import "testing"

// TestMemoryExperiment runs the whole-vs-sharded comparison at a reduced
// dimension set (overridden via the package-internal dims would drag CI;
// the tiny dimension alone exercises every code path) and asserts the
// acceptance shape: sharded peak well under the whole-vector peak,
// aggregation overlapping the receive stream, and bit-identical outputs.
func TestMemoryExperiment(t *testing.T) {
	rows, err := Memory(Scale{Seed: 42}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(memoryDims) {
		t.Fatalf("got %d rows, want %d", len(rows), len(memoryDims))
	}
	for _, r := range rows {
		if !r.BitIdentical {
			t.Fatalf("dim %d: sharded aggregate differs from whole-vector", r.Dim)
		}
		if r.Ratio > 0.25 {
			t.Fatalf("dim %d: sharded peak is %.1f%% of whole-vector, want ≤ 25%%", r.Dim, 100*r.Ratio)
		}
		if r.OverlapFolds == 0 {
			t.Fatalf("dim %d: no aggregation overlapped the receive stream", r.Dim)
		}
		if r.WholePeakBytes != r.Quorum*r.Dim*8 {
			t.Fatalf("dim %d: whole peak %d bytes, want q·d·8 = %d", r.Dim, r.WholePeakBytes, r.Quorum*r.Dim*8)
		}
	}
	// The -shard override must change the measured layout; a prime width
	// that divides neither dimension exercises the remainder shard. (Kept
	// coarse enough that the paper-dimension replay stays a few thousand
	// frames — tiny widths explode the frame count, which the race
	// detector turns into minutes.)
	rows, err = Memory(Scale{Seed: 42}, 2129)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ShardSize != 2129 {
			t.Fatalf("dim %d: shard override ignored (size %d)", r.Dim, r.ShardSize)
		}
		if !r.BitIdentical {
			t.Fatalf("dim %d: prime shard size broke bit-identity", r.Dim)
		}
	}
}
