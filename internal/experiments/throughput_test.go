package experiments

import (
	"strings"
	"testing"
)

// TestThroughputShape checks the wire-throughput experiment's structure:
// one row per (dim, shape), message counts that match the protocol's
// O(n·n̄) fan-out, and positive measured rates. The gob-vs-binary speedup
// itself is asserted by the BenchmarkWire* targets, not here — a loaded CI
// machine must not be able to flake a correctness test over a timing
// margin.
func TestThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("times full-dimension codec passes")
	}
	rows, err := Throughput(Scale{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(throughputDims)*len(throughputShapes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(throughputDims)*len(throughputShapes))
	}
	for _, r := range rows {
		wantMsgs := 2*r.Servers*r.Workers + r.Servers*(r.Servers-1)
		if r.MsgsPerStep != wantMsgs {
			t.Fatalf("(%d,%d): MsgsPerStep = %d, want %d", r.Servers, r.Workers, r.MsgsPerStep, wantMsgs)
		}
		if r.GobMBps <= 0 || r.BinMBps <= 0 || r.GobStepsPerSec <= 0 || r.BinStepsPerSec <= 0 {
			t.Fatalf("non-positive rate in row %+v", r)
		}
		if r.MBPerStep <= 0 || r.Speedup <= 0 {
			t.Fatalf("non-positive volume/speedup in row %+v", r)
		}
	}
	out := FormatThroughput(rows)
	for _, want := range []string{"Wire throughput", "1756426", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
