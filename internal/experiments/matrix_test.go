package experiments

import (
	"strings"
	"testing"
)

// matrixScale keeps the grid cheap enough to run twice per parallelism in
// CI time while still exercising attacks, rules and fault schedules.
var matrixScale = Scale{Steps: 25, Batch: 8, SmallBatch: 4, Examples: 300, Seed: 11}

// matrixTestSpec covers every cell class: an omniscient attack, a blind
// one, the vulnerable mean, a robust rule, no faults, survivable faults,
// and the liveness-breaking partition.
var matrixTestSpec = MatrixSpec{
	Attacks: []string{"signflip:scale=30", "alie:z=1.5", "antikrum"},
	Rules:   []string{"mean", "multi-krum"},
	Faults:  []string{"none", "drop:p=0.01", "partition:every=10,for=2"},
	Churn:   []string{"none", "crash"},
}

func TestMatrixShapeAndBreakdowns(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := Matrix(matrixScale, matrixTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	want := len(matrixTestSpec.Attacks) * len(matrixTestSpec.Rules) *
		len(matrixTestSpec.Faults) * len(matrixTestSpec.Churn)
	if len(r.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(r.Cells), want)
	}
	cellAt := func(attack, rule, fault, churn string) MatrixCell {
		for _, c := range r.Cells {
			if c.Attack == attack && c.Rule == rule && c.Fault == fault && c.Churn == churn {
				return c
			}
		}
		t.Fatalf("cell (%s, %s, %s, %s) missing", attack, rule, fault, churn)
		return MatrixCell{}
	}
	// The classic comparison: mean collapses under the scaled sign-flip,
	// multi-krum holds.
	broken := cellAt("signflip:scale=30", "mean", "none", "none")
	robust := cellAt("signflip:scale=30", "multi-krum", "none", "none")
	if broken.Failed == "" && broken.FinalAccuracy > robust.FinalAccuracy-0.2 {
		t.Fatalf("mean under sign-flip (%.3f) not clearly worse than multi-krum (%.3f)",
			broken.FinalAccuracy, robust.FinalAccuracy)
	}
	if robust.Failed != "" || robust.FinalAccuracy < 0.6 {
		t.Fatalf("multi-krum under sign-flip should survive, got %+v", robust)
	}
	// A bisection partition starves the bulk-synchronous quorums: a
	// deterministic liveness breakdown, not a crash.
	part := cellAt("alie:z=1.5", "multi-krum", "partition:every=10,for=2", "none")
	if part.Failed != "no-quorum" {
		t.Fatalf("partition cell should break liveness, got %+v", part)
	}
	// Survivable faults leave the robust cells converging.
	drop := cellAt("antikrum", "multi-krum", "drop:p=0.01", "none")
	if drop.Failed != "" || drop.FinalAccuracy < 0.6 {
		t.Fatalf("multi-krum under anti-krum + drops should survive, got %+v", drop)
	}
	// The churn band: a server crashing and recovering mid-run is inside
	// the quorum margin, so the robust cell must still converge while under
	// attack.
	churned := cellAt("signflip:scale=30", "multi-krum", "none", "crash")
	if churned.Failed != "" || churned.FinalAccuracy < 0.6 {
		t.Fatalf("multi-krum under sign-flip + crash churn should survive, got %+v", churned)
	}
	out := r.Format()
	for _, wantStr := range []string{"Scenario matrix", "break:no-quorum", "## faults: none", "churn: crash"} {
		if !strings.Contains(out, wantStr) {
			t.Fatalf("formatted matrix missing %q:\n%s", wantStr, out)
		}
	}
}

func TestMatrixBitIdenticalAcrossParallelismAndReruns(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	serial := atParallelism(t, 1, func() (*MatrixResult, error) {
		return Matrix(matrixScale, matrixTestSpec)
	})
	rerun := atParallelism(t, 1, func() (*MatrixResult, error) {
		return Matrix(matrixScale, matrixTestSpec)
	})
	for _, workers := range []int{4, 7} {
		par := atParallelism(t, workers, func() (*MatrixResult, error) {
			return Matrix(matrixScale, matrixTestSpec)
		})
		for _, other := range []*MatrixResult{rerun, par} {
			if len(serial.Cells) != len(other.Cells) {
				t.Fatalf("cell counts differ: %d vs %d", len(serial.Cells), len(other.Cells))
			}
			for i := range serial.Cells {
				if serial.Cells[i] != other.Cells[i] {
					t.Fatalf("cell %d differs: %+v vs %+v", i, serial.Cells[i], other.Cells[i])
				}
			}
		}
	}
	if serial.Format() != rerun.Format() {
		t.Fatal("formatted matrix differs across reruns with the same seed")
	}
}

func TestMatrixRejectsUnknownSpecs(t *testing.T) {
	bad := []MatrixSpec{
		{Attacks: []string{"nosuch"}, Rules: []string{"mean"}, Faults: []string{"none"}},
		{Attacks: []string{"alie"}, Rules: []string{"nosuch"}, Faults: []string{"none"}},
		{Attacks: []string{"alie"}, Rules: []string{"mean"}, Faults: []string{"nosuch"}},
		{Attacks: []string{"alie"}, Rules: []string{"mean"}, Faults: []string{"none"}, Churn: []string{"explode:0@3"}},
		{Attacks: []string{"alie"}, Rules: []string{"mean"}, Faults: []string{"none"}, Churn: []string{"crash:0@9999"}},
		{Attacks: []string{"alie:nosuchparam=1"}, Rules: []string{"mean"}, Faults: []string{"none"}},
		{},
	}
	for _, spec := range bad {
		if _, err := Matrix(matrixScale, spec); err == nil {
			t.Fatalf("spec %+v should be rejected", spec)
		}
	}
}
