package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// runConfigs executes the configurations concurrently (bounded by the
// process parallelism setting; sequential at parallelism 1) and returns the
// run results in input order. Each factory builds its own Config — including
// its workload — inside its task, so dataset synthesis parallelises too.
func runConfigs(mks []func() core.Config) ([]*core.Result, error) {
	results := make([]*core.Result, len(mks))
	tasks := make([]func() error, len(mks))
	for i, mk := range mks {
		tasks[i] = func() error {
			res, err := core.Run(mk())
			if err != nil {
				return err
			}
			results[i] = res
			return nil
		}
	}
	if err := parallel.Do(tasks...); err != nil {
		return nil, err
	}
	return results, nil
}

// Scale shrinks or grows experiment workloads. The paper's absolute scale
// (1.75M-parameter CNN, 50k CIFAR images, ~1400 updates) does not fit a
// single-CPU CI budget; Scale preserves the comparisons while letting the
// harness run anywhere.
type Scale struct {
	// Steps is the number of model updates per run.
	Steps int
	// Batch is the Figure-3a/3b mini-batch ("128" in the paper).
	Batch int
	// SmallBatch is the Figure-3c/3d mini-batch ("32" in the paper).
	SmallBatch int
	// Examples is the synthetic dataset size.
	Examples int
	// Seed makes the whole experiment suite deterministic.
	Seed uint64
}

// Quick is the CI-sized scale; Full is closer to the paper's run lengths.
var (
	Quick = Scale{Steps: 150, Batch: 16, SmallBatch: 8, Examples: 1500, Seed: 42}
	Full  = Scale{Steps: 500, Batch: 32, SmallBatch: 16, Examples: 5000, Seed: 42}
)

// Table1 reproduces Table 1: the CNN architecture and its parameter count.
func Table1() string {
	model := nn.NewCIFARNet(tensor.NewRNG(1))
	var b strings.Builder
	b.WriteString("# Table 1: CNN model parameters (paper architecture)\n")
	fmt.Fprintf(&b, "%-4s %-22s %-12s %-10s\n", "#", "Layer", "OutputSize", "Params")
	for i, li := range model.Summary() {
		name := li.Name[strings.LastIndex(li.Name, ".")+1:]
		fmt.Fprintf(&b, "%-4d %-22s %-12d %-10d\n", i, name, li.OutputSize, li.ParamCount)
	}
	fmt.Fprintf(&b, "Total parameters: %d (paper: 1.75M)\n", model.ParamCount())
	return b.String()
}

// fig3Configs describes the five systems of Figure 3 at the given batch
// size, in the paper's legend order.
func fig3Configs(s Scale, batch int) []func() core.Config {
	return []func() core.Config{
		func() core.Config {
			return core.VanillaTF(core.ImageWorkload(s.Examples, s.Seed), s.Steps, batch, s.Seed)
		},
		func() core.Config {
			return core.VanillaGuanYu(core.ImageWorkload(s.Examples, s.Seed), s.Steps, batch, s.Seed)
		},
		func() core.Config {
			return core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), 0, 0, s.Steps, batch, s.Seed)
		},
		func() core.Config {
			return core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), 5, 0, s.Steps, batch, s.Seed)
		},
		func() core.Config {
			return core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), 5, 1, s.Steps, batch, s.Seed)
		},
	}
}

// Fig3Result bundles the four panels of Figure 3.
type Fig3Result struct {
	// LargeBatch holds the curves at the paper's batch-128 setting
	// (panels a/b); SmallBatch at batch-32 (panels c/d). Each curve carries
	// both the update and the virtual-time axis.
	LargeBatch, SmallBatch []*stats.Series
}

// Fig3 reproduces Figure 3: overhead of GuanYu in a non-Byzantine
// environment, all five systems, two batch sizes, accuracy against both
// model updates (panels a, c) and time (panels b, d). All ten runs are
// independent and execute concurrently.
func Fig3(s Scale) (*Fig3Result, error) {
	mks := append(fig3Configs(s, s.Batch), fig3Configs(s, s.SmallBatch)...)
	results, err := runConfigs(mks)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	curves := make([]*stats.Series, len(results))
	for i, r := range results {
		curves[i] = r.Curve
	}
	return &Fig3Result{LargeBatch: curves[:5], SmallBatch: curves[5:]}, nil
}

// fig3Levels is the accuracy ladder used to render the time-axis panels.
var fig3Levels = []float64{0.20, 0.30, 0.40, 0.50, 0.60, 0.70}

// Format renders the four panels as text tables. The per-update panels
// (a, c) share an x column; the time-axis panels (b, d) are rendered as
// time-to-accuracy ladders because every system has its own time stamps.
func (r *Fig3Result) Format(s Scale) string {
	var b strings.Builder
	b.WriteString(stats.FormatSeriesTable(
		fmt.Sprintf("Figure 3(a): accuracy vs model updates, batch %d", s.Batch),
		"updates", r.LargeBatch, false))
	b.WriteByte('\n')
	b.WriteString(stats.FormatTimeToAccuracyTable(
		fmt.Sprintf("Figure 3(b): accuracy vs time, batch %d", s.Batch),
		r.LargeBatch, fig3Levels))
	b.WriteByte('\n')
	b.WriteString(stats.FormatSeriesTable(
		fmt.Sprintf("Figure 3(c): accuracy vs model updates, batch %d", s.SmallBatch),
		"updates", r.SmallBatch, false))
	b.WriteByte('\n')
	b.WriteString(stats.FormatTimeToAccuracyTable(
		fmt.Sprintf("Figure 3(d): accuracy vs time, batch %d", s.SmallBatch),
		r.SmallBatch, fig3Levels))
	return b.String()
}

// Fig4Result bundles the Byzantine-environment comparison.
type Fig4Result struct {
	// VanillaClean, VanillaByzantine and GuanYuByzantine are the three
	// curves of Figure 4.
	VanillaClean, VanillaByzantine, GuanYuByzantine *stats.Series
}

// Fig4 reproduces Figure 4: impact of Byzantine players. Vanilla TF with a
// single corrupted-gradient worker collapses; GuanYu with 5 Byzantine
// workers and 1 Byzantine (two-faced) server keeps converging.
func Fig4(s Scale) (*Fig4Result, error) {
	results, err := runConfigs([]func() core.Config{
		func() core.Config {
			return core.VanillaTF(core.ImageWorkload(s.Examples, s.Seed), s.Steps, s.Batch, s.Seed)
		},
		// The gradient-corruption attack is a scaled sign-flip: unlike fixed-
		// magnitude noise (which honest gradients self-heal on easy tasks), it
		// tracks the honest gradient scale, so an unprotected mean cannot
		// recover — the paper's "pulls the learning process out of the
		// convergence area" behaviour.
		func() core.Config {
			byzVanilla := core.VanillaTF(core.ImageWorkload(s.Examples, s.Seed), s.Steps, s.Batch, s.Seed)
			return core.WithByzantineWorkers(byzVanilla, 1, func(i int) attack.Attack {
				return attack.SignFlip{Scale: 30}
			})
		},
		func() core.Config {
			byzGuanYu := core.GuanYu(core.ImageWorkload(s.Examples, s.Seed),
				core.PaperByzWorkers, core.PaperByzServers, s.Steps, s.Batch, s.Seed)
			byzGuanYu = core.WithByzantineWorkers(byzGuanYu, core.PaperByzWorkers, func(i int) attack.Attack {
				return attack.SignFlip{Scale: 30}
			})
			return core.WithByzantineServers(byzGuanYu, core.PaperByzServers, func(i int) attack.Attack {
				return attack.TwoFaced{Inner: attack.NewRandomGaussian(100, s.Seed+20+uint64(i))}
			})
		},
	})
	if err != nil {
		return nil, err
	}
	clean, vb, gb := results[0], results[1], results[2]
	vb.Curve.Name = "vanilla TF (Byzantine)"
	return &Fig4Result{VanillaClean: clean.Curve, VanillaByzantine: vb.Curve, GuanYuByzantine: gb.Curve}, nil
}

// Format renders Figure 4 as a text table.
func (r *Fig4Result) Format() string {
	return stats.FormatSeriesTable(
		"Figure 4: impact of Byzantine players on convergence", "updates",
		[]*stats.Series{r.VanillaClean, r.VanillaByzantine, r.GuanYuByzantine}, false)
}

// Table2 reproduces Table 2: the alignment probe on a Byzantine GuanYu
// deployment, sampling every 20 steps after a warm-up.
func Table2(s Scale) ([]stats.AlignmentRecord, error) {
	cfg := core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), 1, 1, s.Steps, s.Batch, s.Seed)
	cfg.AlignEvery = 20
	cfg.AlignAfter = s.Steps / 2 // "after some large step number"
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return res.Alignments, nil
}

// OverheadResult carries the Section-5.3 headline numbers.
type OverheadResult struct {
	// RuntimeOverheadPct is vanilla GuanYu vs vanilla TF time to the target
	// accuracy (paper: ≈65%).
	RuntimeOverheadPct float64
	// ByzantineOverheadPct is GuanYu(5,1) vs vanilla GuanYu (paper: ≤~33%).
	ByzantineOverheadPct float64
	// Target is the accuracy threshold used (paper: 0.60).
	Target float64
	// Curves are the three underlying series for inspection.
	Curves []*stats.Series
}

// Overhead reproduces the Section-5.3 overhead breakdown at the given
// accuracy target. If no curve reaches the paper's 60% at this scale, the
// target is lowered to 90% of the weakest curve's best accuracy so the
// comparison stays meaningful.
func Overhead(s Scale) (*OverheadResult, error) {
	results, err := runConfigs([]func() core.Config{
		func() core.Config {
			return core.VanillaTF(core.ImageWorkload(s.Examples, s.Seed), s.Steps, s.Batch, s.Seed)
		},
		func() core.Config {
			return core.VanillaGuanYu(core.ImageWorkload(s.Examples, s.Seed), s.Steps, s.Batch, s.Seed)
		},
		func() core.Config {
			return core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), 5, 1, s.Steps, s.Batch, s.Seed)
		},
	})
	if err != nil {
		return nil, err
	}
	tf, vg, gy := results[0], results[1], results[2]

	target := core.PaperAccuracyTarget
	weakest := math.Min(tf.Curve.BestAccuracy(),
		math.Min(vg.Curve.BestAccuracy(), gy.Curve.BestAccuracy()))
	if weakest < target {
		target = 0.9 * weakest
	}
	return &OverheadResult{
		RuntimeOverheadPct:   stats.OverheadPercent(tf.Curve, vg.Curve, target),
		ByzantineOverheadPct: stats.OverheadPercent(vg.Curve, gy.Curve, target),
		Target:               target,
		Curves:               []*stats.Series{tf.Curve, vg.Curve, gy.Curve},
	}, nil
}

// Format renders the overhead breakdown.
func (r *OverheadResult) Format() string {
	var b strings.Builder
	b.WriteString("# Section 5.3 overhead breakdown\n")
	fmt.Fprintf(&b, "accuracy target: %.2f\n", r.Target)
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%-24s time-to-target %8.2fs  throughput %7.3f upd/s\n",
			c.Name, c.TimeToAccuracy(r.Target), c.Throughput())
	}
	fmt.Fprintf(&b, "runtime overhead (vanilla GuanYu vs vanilla TF): %+.1f%% (paper ≈ +65%%)\n",
		r.RuntimeOverheadPct)
	fmt.Fprintf(&b, "Byzantine-resilience overhead (GuanYu(5,1) vs vanilla GuanYu): %+.1f%% (paper ≤ ~+33%%)\n",
		r.ByzantineOverheadPct)
	return b.String()
}

// ContractionResult compares drift with and without the phase-3 exchange.
type ContractionResult struct {
	// DriftWith and DriftWithout are final max pairwise distances between
	// honest server models.
	DriftWith, DriftWithout float64
}

// Contraction is the ablation of the server-to-server median round: without
// it, honest server models drift apart.
func Contraction(s Scale) (*ContractionResult, error) {
	mk := func(disable bool) func() core.Config {
		return func() core.Config {
			cfg := core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), 1, 1, s.Steps, s.Batch, s.Seed)
			cfg.DisableServerExchange = disable
			return cfg
		}
	}
	results, err := runConfigs([]func() core.Config{mk(false), mk(true)})
	if err != nil {
		return nil, err
	}
	drift := func(r *core.Result) float64 {
		return r.Curve.Points[len(r.Curve.Points)-1].Drift
	}
	return &ContractionResult{DriftWith: drift(results[0]), DriftWithout: drift(results[1])}, nil
}

// Format renders the contraction ablation.
func (r *ContractionResult) Format() string {
	return fmt.Sprintf("# Contraction ablation (phase-3 median exchange)\n"+
		"final honest-server drift with exchange:    %.6f\n"+
		"final honest-server drift without exchange: %.6f\n"+
		"ratio: %.2fx\n", r.DriftWith, r.DriftWithout, r.DriftWithout/math.Max(r.DriftWith, 1e-12))
}

// QuorumSweepRow is one sweep point of the declared-f̄ trade-off.
type QuorumSweepRow struct {
	// DeclaredF is f̄; Quorum is the induced q̄ = 2f̄+3.
	DeclaredF, Quorum int
	// FinalAccuracy and Throughput show the quality/latency trade-off the
	// paper remarks on in Section 5.3.
	FinalAccuracy, Throughput float64
}

// QuorumSweep reproduces the paper's observation that declaring more
// Byzantine workers (larger q̄) improves per-update quality while reducing
// throughput.
func QuorumSweep(s Scale) ([]QuorumSweepRow, error) {
	fs := []int{0, 2, 5}
	mks := make([]func() core.Config, len(fs))
	for i, f := range fs {
		mks[i] = func() core.Config {
			return core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), f, 0, s.Steps, s.Batch, s.Seed)
		}
	}
	results, err := runConfigs(mks)
	if err != nil {
		return nil, err
	}
	rows := make([]QuorumSweepRow, len(fs))
	for i, f := range fs {
		rows[i] = QuorumSweepRow{
			DeclaredF:     f,
			Quorum:        gar.MinQuorum(f),
			FinalAccuracy: results[i].FinalAccuracy,
			Throughput:    results[i].Curve.Throughput(),
		}
	}
	return rows, nil
}

// FormatQuorumSweep renders the sweep.
func FormatQuorumSweep(rows []QuorumSweepRow) string {
	var b strings.Builder
	b.WriteString("# Quorum sweep: declared f̄ vs quality and throughput\n")
	fmt.Fprintf(&b, "%-10s %-8s %-14s %-14s\n", "declaredF", "quorum", "finalAccuracy", "updates/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-8d %-14.4f %-14.3f\n", r.DeclaredF, r.Quorum, r.FinalAccuracy, r.Throughput)
	}
	return b.String()
}

// NonIIDRow compares GuanYu under IID and label-skewed worker data.
type NonIIDRow struct {
	// Sharding is "iid" or "by-label".
	Sharding string
	// Skew is the measured mean label-distribution total-variation distance.
	Skew float64
	// FinalAccuracy under GuanYu(1,1) with no actual Byzantine nodes.
	FinalAccuracy float64
}

// NonIID probes GuanYu outside its theory: the convergence proof assumes
// every worker estimates the same gradient distribution (IID shards); with
// label-skewed shards honest workers disagree systematically and robust
// aggregation partially filters legitimate signal. The experiment quantifies
// the resulting accuracy cost.
func NonIID(s Scale) ([]NonIIDRow, error) {
	w := core.ImageWorkload(s.Examples, s.Seed)
	rows := make([]NonIIDRow, 0, 2)

	iidShards, err := dataset.ShardIID(w.Train, core.PaperWorkers, tensor.NewRNG(s.Seed+31))
	if err != nil {
		return nil, err
	}
	labelShards, err := dataset.ShardByLabel(w.Train, core.PaperWorkers)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name   string
		shards []*dataset.Dataset
	}{
		{"iid", iidShards},
		{"by-label", labelShards},
	}
	mks := make([]func() core.Config, len(variants))
	for i, v := range variants {
		mks[i] = func() core.Config {
			cfg := core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), 1, 1, s.Steps, s.Batch, s.Seed)
			cfg.WorkerShards = v.shards
			return cfg
		}
	}
	results, err := runConfigs(mks)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		rows = append(rows, NonIIDRow{
			Sharding:      v.name,
			Skew:          dataset.LabelSkew(w.Train, v.shards),
			FinalAccuracy: results[i].FinalAccuracy,
		})
	}
	return rows, nil
}

// FormatNonIID renders the non-IID probe.
func FormatNonIID(rows []NonIIDRow) string {
	var b strings.Builder
	b.WriteString("# Non-IID probe: worker data sharding vs accuracy\n")
	fmt.Fprintf(&b, "%-10s %-8s %-14s\n", "sharding", "skew", "finalAccuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8.3f %-14.4f\n", r.Sharding, r.Skew, r.FinalAccuracy)
	}
	return b.String()
}

// AsyncSweepRow is one point of the network-asynchrony sweep.
type AsyncSweepRow struct {
	// JitterSigma is the log-normal latency spread (0 = deterministic
	// network; larger = heavier tails, i.e. "more asynchronous").
	JitterSigma float64
	// VirtualTime is total virtual seconds for the run.
	VirtualTime float64
	// FinalAccuracy shows convergence is insensitive to the spread.
	FinalAccuracy float64
}

// AsyncSweep varies the latency-jitter of the simulated network. The
// quorum discipline should keep accuracy flat while total time grows with
// the tail weight — the "tolerates unbounded communication delays" claim,
// made quantitative.
func AsyncSweep(s Scale) ([]AsyncSweepRow, error) {
	sigmas := []float64{0, 0.5, 1.0, 2.0}
	mks := make([]func() core.Config, len(sigmas))
	for i, sigma := range sigmas {
		mks[i] = func() core.Config {
			cfg := core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), 1, 1, s.Steps, s.Batch, s.Seed)
			cost := core.DefaultCostModel(s.Seed + 900)
			cost.Latency = transport.NewLatencyModel(150e-6, sigma, 1.25e9, s.Seed+901)
			cfg.Cost = cost
			return cfg
		}
	}
	results, err := runConfigs(mks)
	if err != nil {
		return nil, err
	}
	rows := make([]AsyncSweepRow, len(sigmas))
	for i, sigma := range sigmas {
		rows[i] = AsyncSweepRow{
			JitterSigma:   sigma,
			VirtualTime:   results[i].VirtualTime,
			FinalAccuracy: results[i].FinalAccuracy,
		}
	}
	return rows, nil
}

// FormatAsyncSweep renders the asynchrony sweep.
func FormatAsyncSweep(rows []AsyncSweepRow) string {
	var b strings.Builder
	b.WriteString("# Asynchrony sweep: latency tail weight vs time and accuracy\n")
	fmt.Fprintf(&b, "%-12s %-14s %-14s\n", "jitterSigma", "virtualTime(s)", "finalAccuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.1f %-14.2f %-14.4f\n", r.JitterSigma, r.VirtualTime, r.FinalAccuracy)
	}
	return b.String()
}

// GARAblationRow compares server-side aggregation rules under attack.
type GARAblationRow struct {
	// Rule is the server-side gradient rule under test.
	Rule string
	// FinalAccuracy is measured under 5 Byzantine gradient-corrupting
	// workers.
	FinalAccuracy float64
}

// GARAblation swaps the server-side rule while keeping 5 Byzantine workers,
// showing which rules actually confer resilience (mean must fail).
func GARAblation(s Scale) ([]GARAblationRow, error) {
	names := []string{"mean", "coordinate-median", "multi-krum", "trimmed-mean",
		"geometric-median", "mda"}
	rules := make([]gar.Rule, len(names))
	for i, name := range names {
		rule, err := gar.FromName(name, 5)
		if err != nil {
			return nil, err
		}
		rules[i] = rule
	}
	mks := make([]func() core.Config, len(rules))
	for i := range rules {
		mks[i] = func() core.Config {
			cfg := core.GuanYu(core.ImageWorkload(s.Examples, s.Seed), 5, 0, s.Steps, s.Batch, s.Seed)
			cfg.Rule = rules[i]
			return core.WithByzantineWorkers(cfg, 5, func(int) attack.Attack {
				return attack.SignFlip{Scale: 30}
			})
		}
	}
	results, err := runConfigs(mks)
	if err != nil {
		return nil, err
	}
	rows := make([]GARAblationRow, len(rules))
	for i, rule := range rules {
		acc := results[i].FinalAccuracy
		if !tensor.IsFinite(results[i].Final) {
			acc = 0
		}
		rows[i] = GARAblationRow{Rule: rule.Name(), FinalAccuracy: acc}
	}
	return rows, nil
}

// FormatGARAblation renders the rule ablation.
func FormatGARAblation(rows []GARAblationRow) string {
	var b strings.Builder
	b.WriteString("# GAR ablation under 5 Byzantine workers\n")
	fmt.Fprintf(&b, "%-22s %-14s\n", "rule", "finalAccuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-14.4f\n", r.Rule, r.FinalAccuracy)
	}
	return b.String()
}
