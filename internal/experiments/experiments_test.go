package experiments

import (
	"strings"
	"testing"
)

// tiny is a minimal scale so the shape checks run in CI time. The blob-level
// fidelity checks live in internal/core; here we verify the experiment
// harness end-to-end on the image workload at a reduced step count.
var tiny = Scale{Steps: 40, Batch: 8, SmallBatch: 4, Examples: 400, Seed: 7}

func TestTable1MatchesPaperArchitecture(t *testing.T) {
	out := Table1()
	for _, want := range []string{"1756426", "1.75M", "Conv2D", "Dense"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := Fig4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	clean := r.VanillaClean.BestAccuracy()
	byz := r.VanillaByzantine.FinalAccuracy()
	gy := r.GuanYuByzantine.FinalAccuracy()
	// Shape: Byzantine vanilla must do much worse than both clean vanilla
	// and Byzantine GuanYu.
	if byz >= clean-0.05 {
		t.Fatalf("vanilla under attack (%.3f) not worse than clean vanilla (%.3f)", byz, clean)
	}
	if gy <= byz+0.05 {
		t.Fatalf("GuanYu under attack (%.3f) not better than vanilla under attack (%.3f)", gy, byz)
	}
	out := r.Format()
	if !strings.Contains(out, "vanilla TF (Byzantine)") {
		t.Fatalf("figure legend missing:\n%s", out)
	}
}

func TestOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := Overhead(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: vanilla GuanYu pays a positive runtime overhead over vanilla
	// TF, and the Byzantine deployment pays a further positive overhead.
	if !(r.RuntimeOverheadPct > 0) {
		t.Fatalf("runtime overhead %.1f%% not positive", r.RuntimeOverheadPct)
	}
	if !(r.ByzantineOverheadPct > 0) {
		t.Fatalf("Byzantine overhead %.1f%% not positive", r.ByzantineOverheadPct)
	}
	if !strings.Contains(r.Format(), "overhead") {
		t.Fatal("format broken")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	recs, err := Table2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no alignment records")
	}
	for _, r := range recs {
		if r.CosPhi < 0 || r.CosPhi > 1.0000001 {
			t.Fatalf("cos φ out of range at step %d: %v", r.Step, r.CosPhi)
		}
	}
}

func TestContractionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r, err := Contraction(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if r.DriftWithout <= r.DriftWith {
		t.Fatalf("phase-3 ablation shows no drift increase: %.5f vs %.5f",
			r.DriftWith, r.DriftWithout)
	}
}

func TestGARAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	rows, err := GARAblation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Rule] = r.FinalAccuracy
	}
	// Mean must be the worst rule under gradient corruption.
	mean := byName["mean"]
	for name, acc := range byName {
		if name == "mean" {
			continue
		}
		if acc < mean {
			t.Fatalf("robust rule %s (%.3f) did worse than mean (%.3f)", name, acc, mean)
		}
	}
	if !strings.Contains(FormatGARAblation(rows), "multi-krum") {
		t.Fatal("format broken")
	}
}

func TestAsyncSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	rows, err := AsyncSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	// Heavier tails must cost time but not accuracy.
	if rows[len(rows)-1].VirtualTime <= rows[0].VirtualTime {
		t.Fatalf("heavy-tailed network not slower: %.3f vs %.3f",
			rows[len(rows)-1].VirtualTime, rows[0].VirtualTime)
	}
	// At this tiny scale (40 steps, q̄=5 gradients/step) absolute accuracy
	// is modest; "didn't break" means clearly above the 10-class chance
	// level at every jitter setting.
	for _, r := range rows {
		if r.FinalAccuracy < 0.14 {
			t.Fatalf("σ=%.1f broke convergence (%.3f)", r.JitterSigma, r.FinalAccuracy)
		}
	}
	if !strings.Contains(FormatAsyncSweep(rows), "jitterSigma") {
		t.Fatal("format broken")
	}
}

func TestQuorumSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	rows, err := QuorumSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 sweep rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Quorum != 2*r.DeclaredF+3 {
			t.Fatalf("quorum mismatch: f=%d q=%d", r.DeclaredF, r.Quorum)
		}
		if r.FinalAccuracy <= 0.1 {
			t.Fatalf("sweep run at f=%d failed to learn (%.3f)", r.DeclaredF, r.FinalAccuracy)
		}
	}
	if !strings.Contains(FormatQuorumSweep(rows), "declaredF") {
		t.Fatal("format broken")
	}
}
