package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/gar"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// The scenario matrix is the adversarial testbed the single hand-picked
// runs of Figures 3/4 are not: a full attack × aggregation-rule ×
// fault-profile grid, every cell an independent deterministic simulation.
// It answers, in one table, which rules hold up under which adaptive
// adversaries while the network itself misbehaves — and shows the
// breakdowns (mean under any collusion; quorum liveness under partitions)
// next to the survivals.

// MatrixSpec selects the grid axes. Attacks and Faults are specs in the
// registry syntax ("alie", "alie:z=1.2", "drop:p=0.05"); Rules are
// gradient-GAR registry names.
type MatrixSpec struct {
	// Attacks arm the Byzantine workers, one grid column block per spec.
	Attacks []string
	// Rules are the server-side gradient aggregation rules under test.
	Rules []string
	// Faults are the network fault profiles applied to honest traffic.
	Faults []string
	// Churn are the server membership-churn scenarios (core.ChurnPreset
	// names — "none", "crash", "rolling", "joinleave" — or explicit
	// "kind:server@step" schedules); empty means {"none"}. Each scenario
	// multiplies the grid: the churn band answers whether the rules that
	// survive an adversary also survive servers crashing, recovering and
	// changing roster mid-run.
	Churn []string
	// Compress are the wire compression specs applied to honest traffic
	// ("none", "float32", "delta[:key=N]", "topk:k=F"); empty means
	// {"none"}. Each spec multiplies the grid: the matrix answers whether a
	// lossy wire changes which rules survive which adversaries.
	Compress []string
	// ByzWorkers is the number of actually-Byzantine workers (and the
	// declared f̄). Default 5 — the paper's Byzantine worker count.
	ByzWorkers int
}

// DefaultMatrixSpec is the standard grid: the strongest omniscient attacks
// plus a stealth server-style behaviour, the headline rules including the
// vulnerable mean baseline, and representative fault profiles.
func DefaultMatrixSpec() MatrixSpec {
	return MatrixSpec{
		Attacks: []string{"signflip:scale=30", "alie:z=1.5", "ipm:eps=3", "antikrum", "mimic", "drift:delta=0.05"},
		Rules:   []string{"mean", "coordinate-median", "multi-krum"},
		// The bisection partition deterministically starves the
		// bulk-synchronous quorums — its column is the liveness-breakdown
		// row of the table, not a survivable profile.
		Faults: []string{"none", "drop:p=0.01", "delay:p=0.2,spike=0.002", "partition:every=25,for=2"},
		// The churn band: rolling restarts, a crash that recovers via the
		// median rejoin, and an elastic join/leave roster — each crossed
		// with every fault profile, so "join/leave under partition" gets a
		// cell of its own.
		Churn: []string{"none", "crash", "rolling", "joinleave"},
		// The exact wire and the most aggressive compression bracket the
		// grid; the intermediate schemes get their own experiment
		// (bandwidth).
		Compress: []string{"none", "topk:k=0.01"},
	}
}

// SmokeMatrixSpec is the smallest useful cell — one attack, one rule, one
// fault profile — sized for a CI smoke job.
func SmokeMatrixSpec() MatrixSpec {
	return MatrixSpec{
		Attacks:  []string{"alie"},
		Rules:    []string{"multi-krum"},
		Faults:   []string{"drop:p=0.02"},
		Compress: []string{"none", "topk:k=0.01"},
		// One crash-recovery cell next to the churn-free baseline; the
		// longer rolling/joinleave scenarios need more steps than the smoke
		// scale runs.
		Churn: []string{"none", "crash"},
	}
}

// compressAxis is the spec's compression axis, defaulting to the exact wire.
func (m MatrixSpec) compressAxis() []string {
	if len(m.Compress) == 0 {
		return []string{"none"}
	}
	return m.Compress
}

// churnAxis is the spec's churn axis, defaulting to a stable membership.
func (m MatrixSpec) churnAxis() []string {
	if len(m.Churn) == 0 {
		return []string{"none"}
	}
	return m.Churn
}

func (m MatrixSpec) byzWorkers() int {
	if m.ByzWorkers > 0 {
		return m.ByzWorkers
	}
	return core.PaperByzWorkers
}

// MatrixCell is one grid point's outcome.
type MatrixCell struct {
	// Attack, Rule, Fault, Churn and Compress identify the cell.
	Attack, Rule, Fault, Churn, Compress string
	// FinalAccuracy is the run's final test accuracy (0 when Failed).
	FinalAccuracy float64
	// Failed is empty for a completed run, otherwise the breakdown class:
	// "no-quorum" (faults or silence starved a quorum — a liveness
	// breakdown), "non-finite" (the aggregate was poisoned — a safety
	// breakdown), or "error".
	Failed string
}

// MatrixResult is the full grid.
type MatrixResult struct {
	// Spec echoes the grid axes.
	Spec MatrixSpec
	// Cells holds one entry per (fault, churn, compress, attack, rule),
	// fault-major in the spec's order.
	Cells []MatrixCell
}

// Matrix runs the scenario grid. Cells execute concurrently on the shared
// worker pool; each cell is a self-contained deterministic simulation
// (workload, attacks and fault schedule all derived from s.Seed), and
// per-cell failures are captured as breakdown entries rather than aborting
// the grid — so the result is bit-identical at any parallelism and across
// reruns with the same seed.
//
// The grid runs on the fast Blob workload: the point is scenario coverage,
// not absolute accuracy, and the ~50× cheaper task is what makes a
// 50-cell grid affordable everywhere the suite runs.
func Matrix(s Scale, spec MatrixSpec) (*MatrixResult, error) {
	if len(spec.Attacks) == 0 || len(spec.Rules) == 0 || len(spec.Faults) == 0 {
		return nil, fmt.Errorf("matrix: empty grid axis (attacks=%d rules=%d faults=%d)",
			len(spec.Attacks), len(spec.Rules), len(spec.Faults))
	}
	res := &MatrixResult{Spec: spec}
	for _, fault := range spec.Faults {
		for _, churn := range spec.churnAxis() {
			for _, comp := range spec.compressAxis() {
				for _, att := range spec.Attacks {
					for _, rule := range spec.Rules {
						res.Cells = append(res.Cells, MatrixCell{
							Attack: att, Rule: rule, Fault: fault, Churn: churn, Compress: comp})
					}
				}
			}
		}
	}

	// Resolve every spec up front so a typo fails the experiment loudly
	// instead of surfacing as a grid of "error" cells.
	for _, a := range spec.Attacks {
		if _, err := attack.FromSpec(a, s.Seed); err != nil {
			return nil, fmt.Errorf("matrix: %w", err)
		}
	}
	f := spec.byzWorkers()
	for _, r := range spec.Rules {
		if _, err := gar.FromName(r, f); err != nil {
			return nil, fmt.Errorf("matrix: %w", err)
		}
	}
	for _, fs := range spec.Faults {
		if _, err := faultFromSpec(fs, s.Seed); err != nil {
			return nil, fmt.Errorf("matrix: %w", err)
		}
	}
	for _, cs := range spec.compressAxis() {
		if _, err := compress.ParseSpec(cs); err != nil {
			return nil, fmt.Errorf("matrix: %w", err)
		}
	}
	for _, cs := range spec.churnAxis() {
		plan, err := matrixChurn(cs, s)
		if err != nil {
			return nil, fmt.Errorf("matrix: %w", err)
		}
		if err := plan.Validate(core.PaperServers, s.Steps, gar.MinQuorum(0), nil); err != nil {
			return nil, fmt.Errorf("matrix: churn %q: %w", cs, err)
		}
	}

	tasks := make([]func() error, len(res.Cells))
	for i := range res.Cells {
		cell := &res.Cells[i]
		tasks[i] = func() error {
			runMatrixCell(s, f, cell)
			return nil // breakdowns are results, not errors
		}
	}
	if err := parallel.Do(tasks...); err != nil {
		return nil, err
	}
	return res, nil
}

// matrixChurn expands one churn-axis value against the matrix deployment:
// the grid's servers are all honest with the slack f=0 quorum (q=3 of 6),
// which is exactly the margin that absorbs one server down at a time.
func matrixChurn(spec string, s Scale) (*core.ChurnPlan, error) {
	return core.ChurnPreset(spec, core.PaperServers, 1, s.Steps, nil)
}

// runMatrixCell executes one grid point, writing the outcome into cell.
func runMatrixCell(s Scale, byzWorkers int, cell *MatrixCell) {
	mkAttack, _ := attack.FromSpec(cell.Attack, s.Seed+500)
	rule, _ := gar.FromName(cell.Rule, byzWorkers)
	faults, _ := faultFromSpec(cell.Fault, s.Seed+900)
	comp, _ := compress.ParseSpec(cell.Compress)
	churn, _ := matrixChurn(cell.Churn, s)

	w := core.BlobWorkload(s.Examples, s.Seed)
	cfg := core.Config{
		Mode:  core.ModeGuanYu,
		Model: w.Model, Train: w.Train, Test: w.Test,
		// All servers honest and declared so (f=0, q=3 of 6): the worker
		// axis carries the attacks, and the slack quorum is what lets the
		// drop/partition profiles probe degradation instead of tripping
		// liveness immediately.
		NumServers: core.PaperServers, FServers: 0,
		NumWorkers: core.PaperWorkers, FWorkers: byzWorkers,
		Steps: s.Steps, Batch: s.SmallBatch,
		Rule:        rule,
		Faults:      transport.NewFaultInjector(faults),
		Compression: comp,
		Churn:       churn,
		Seed:        s.Seed,
	}
	cfg = core.WithByzantineWorkers(cfg, byzWorkers, mkAttack)

	res, err := core.Run(cfg)
	switch {
	case err != nil && strings.Contains(err.Error(), "quorum"):
		cell.Failed = "no-quorum"
	case err != nil:
		cell.Failed = "error"
	case !tensor.IsFinite(res.Final):
		cell.Failed = "non-finite"
	default:
		cell.FinalAccuracy = res.FinalAccuracy
	}
}

// faultFromSpec resolves a fault-profile spec string.
func faultFromSpec(spec string, seed uint64) (transport.FaultConfig, error) {
	name, params, err := attack.ParseSpec(spec)
	if err != nil {
		return transport.FaultConfig{}, err
	}
	return transport.FaultByName(name, params, seed)
}

// Format renders the grid as one attack × rule table per (fault profile,
// compression scheme) pair.
func (r *MatrixResult) Format() string {
	var b strings.Builder
	b.WriteString("# Scenario matrix: final accuracy by attack × GAR × fault profile × churn × compression\n")
	fmt.Fprintf(&b, "(%d byz workers of %d; %d servers, all honest; breakdowns: no-quorum = liveness, non-finite = safety)\n",
		r.Spec.byzWorkers(), core.PaperWorkers, core.PaperServers)
	idx := 0
	for _, fault := range r.Spec.Faults {
		for _, churn := range r.Spec.churnAxis() {
			for _, comp := range r.Spec.compressAxis() {
				fmt.Fprintf(&b, "\n## faults: %s, churn: %s, compress: %s\n", fault, churn, comp)
				fmt.Fprintf(&b, "%-22s", "attack")
				for _, rule := range r.Spec.Rules {
					fmt.Fprintf(&b, " %-18s", rule)
				}
				b.WriteByte('\n')
				for range r.Spec.Attacks {
					fmt.Fprintf(&b, "%-22s", r.Cells[idx].Attack)
					for range r.Spec.Rules {
						c := r.Cells[idx]
						if c.Failed != "" {
							fmt.Fprintf(&b, " %-18s", "break:"+c.Failed)
						} else {
							fmt.Fprintf(&b, " %-18.4f", c.FinalAccuracy)
						}
						idx++
					}
					b.WriteByte('\n')
				}
			}
		}
	}
	return b.String()
}
