// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5), plus the systems-side measurements the
// reproduction grew around it: the scenario matrix (attack × GAR × fault
// grid), the wire-throughput ceiling (binary codec vs the retired gob
// framing), and the collector-memory comparison (whole-vector buffering vs
// chunked shard streaming). Each experiment returns both structured
// results and a formatted text rendering; cmd/guanyu-bench prints them,
// the root benchmark suite wraps them in testing.B, and EXPERIMENTS.md
// (see its "Experiment index" and "Measured column" sections, and the
// paper cross-reference table) records the measured outcomes next to the
// paper's.
//
// # Determinism contract
//
// The independent runs of one experiment — the five systems of Figure 3,
// the rule ablation's six rules, a sweep's points, the matrix's cells —
// execute concurrently on the shared worker pool (bounded by
// guanyu.SetParallelism / the -parallel flag). Every run is a
// self-contained deterministic simulation writing to its own result slot,
// so concurrency never changes any number: simulation-derived results are
// bit-identical across reruns, parallelism settings, and machines for a
// fixed seed. The two exceptions are labelled in their own files: the
// throughput experiment is timing-based by nature (the gob-vs-binary
// comparison is the stable part), and the memory experiment's byte counts
// and overlap are deterministic while its wall-clock is not measured at
// all.
package experiments
