package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/transport"
)

// The scale experiment measures what the bounded-mailbox actor runtime
// unlocks: node counts in the hundreds inside one process. Before it, the
// unbounded transport.Mailbox made every fast sender a memory liability;
// with per-sender bounds (and per-link couriers on the send side) a node's
// worst-case buffering is O(n·cap·frame) by construction, so deployments
// are limited by arithmetic, not by inbox growth. The sweep runs the
// deterministic simulator and the goroutine-per-node live runtime at
// growing populations and reports steps/sec and the sampled peak heap
// against an explicit derived budget.

// ScaleRow is one population point of the sweep.
type ScaleRow struct {
	// Runtime is "sim" (virtual-time engine) or "live" (goroutine per
	// node over the in-process transport).
	Runtime string `json:"runtime"`
	// Servers + Workers = Nodes, the deployment population (f = 0: the
	// sweep studies runtime scaling, not Byzantine filtering).
	Servers int `json:"servers"`
	Workers int `json:"workers"`
	Nodes   int `json:"nodes"`
	// Steps is the number of learning steps completed.
	Steps int `json:"steps"`
	// StepsPerSec is Steps over the run's wall-clock time.
	StepsPerSec float64 `json:"stepsPerSec"`
	// PeakHeapBytes is the sampled runtime.ReadMemStats HeapAlloc
	// high-water mark during the run.
	PeakHeapBytes uint64 `json:"peakHeapBytes"`
	// HeapBudgetBytes is the derived bound peak heap is held to on live
	// rows: a fixed process floor plus a multiple of nodes × cap × frame
	// bytes. Zero on sim rows (virtual time buffers one step, not a
	// network).
	HeapBudgetBytes uint64 `json:"heapBudgetBytes,omitempty"`
	// DroppedOverflow counts frames shed by the bounded mailboxes during
	// live rows — zero in an overflow-free (bulk-synchronous) schedule.
	DroppedOverflow uint64 `json:"droppedOverflow,omitempty"`
}

// ScaleSweepResult is the full sweep plus its verdict.
type ScaleSweepResult struct {
	// Mailbox is the bound the live rows ran under.
	Mailbox transport.MailboxConfig
	// Rows holds sim rows first, then live rows, each in growing order.
	Rows []ScaleRow
	// WithinBudget reports that every live row's peak heap stayed under
	// its derived budget — the line CI greps for.
	WithinBudget bool
	// PeakRSSBytes is the process VmHWM after the sweep (0 where
	// /proc/self/status is unavailable). Process-wide and monotonic, so
	// informational rather than per-row.
	PeakRSSBytes uint64
}

// scaleDims shapes the sweep. The populations are what the acceptance
// targets name: a simulated cluster beyond 200 nodes and a live cluster at
// 100, with CI smoke sizes of 64 and 24.
var (
	scaleSimWorkers   = []int{20, 50, 100, 200}
	scaleLiveWorkers  = []int{24, 46, 94}
	scaleSmokeSim     = []int{58}
	scaleSmokeLive    = []int{18}
	scaleServers      = 6
	scaleSimSteps     = 20
	scaleLiveSteps    = 10
	scaleSmokeSteps   = 8
	scaleBatch        = 8
	scaleLiveTimeout  = 2 * time.Minute
	scaleHeapFloor    = uint64(64 << 20) // model/dataset/runtime floor
	scaleBudgetFactor = uint64(8)        // slack over the n·cap·frame bound
)

// DefaultScaleMailbox is the bound the scale experiment arms when the
// caller passes the zero config: drop-oldest (superseded-step frames are
// the protocol's own semantics) at the transport's default cap.
var DefaultScaleMailbox = transport.MailboxConfig{
	Cap:    transport.DefaultMailboxCap,
	Policy: transport.DropOldest,
}

// heapSampler polls runtime.ReadMemStats on a short period and keeps the
// HeapAlloc high-water mark. Sampling misses sub-period spikes, which is
// fine for a bound meant to catch unbounded growth (megabytes per second
// under a spraying sender), not byte-exact accounting.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	h := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		var ms runtime.MemStats
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > h.peak {
				h.peak = ms.HeapAlloc
			}
			select {
			case <-h.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return h
}

// Peak stops the sampler and returns the high-water mark.
func (h *heapSampler) Peak() uint64 {
	close(h.stop)
	<-h.done
	return h.peak
}

// measureRun executes fn under the heap sampler, from a GC-settled
// baseline, and returns wall time and peak heap.
func measureRun(fn func() error) (time.Duration, uint64, error) {
	runtime.GC()
	sampler := startHeapSampler()
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	peak := sampler.Peak()
	return elapsed, peak, err
}

// scaleHeapBudget derives the live-row bound: a fixed floor for the
// process (models, datasets, goroutine stacks) plus slack × n × cap
// mailbox slots of one frame each, mirroring the O(n·cap·frame) worst
// case the bounded runtime guarantees.
func scaleHeapBudget(nodes, dim int, mbox transport.MailboxConfig) uint64 {
	frame := uint64(8*dim + 128) // payload + header/bookkeeping slack
	return scaleHeapFloor + scaleBudgetFactor*uint64(nodes)*uint64(mbox.Cap)*frame
}

// ScaleSweep runs the population sweep. smoke selects the CI sizing; the
// zero mbox selects DefaultScaleMailbox for the live rows. Runs execute
// sequentially — the heap measurement requires the run under test to be
// the only one resident.
func ScaleSweep(s Scale, smoke bool, mbox transport.MailboxConfig) (*ScaleSweepResult, error) {
	if !mbox.Bounded() {
		mbox = DefaultScaleMailbox
	}
	simWorkers, liveWorkers := scaleSimWorkers, scaleLiveWorkers
	simSteps, liveSteps := scaleSimSteps, scaleLiveSteps
	if smoke {
		simWorkers, liveWorkers = scaleSmokeSim, scaleSmokeLive
		simSteps, liveSteps = scaleSmokeSteps, scaleSmokeSteps
	}
	res := &ScaleSweepResult{Mailbox: mbox, WithinBudget: true}
	w := core.BlobWorkload(s.Examples, s.Seed)
	dim := w.Model.ParamCount()

	for _, workers := range simWorkers {
		cfg := core.Config{
			Mode:       core.ModeGuanYu,
			Model:      w.Model,
			Train:      w.Train,
			Test:       w.Test,
			NumServers: scaleServers,
			NumWorkers: workers,
			Steps:      simSteps,
			Batch:      scaleBatch,
			EvalEvery:  simSteps, // throughput run: evaluate once, not per step
			Seed:       s.Seed,
		}
		elapsed, peak, err := measureRun(func() error {
			_, err := core.Run(cfg)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("scale: sim %d workers: %w", workers, err)
		}
		res.Rows = append(res.Rows, ScaleRow{
			Runtime: "sim", Servers: scaleServers, Workers: workers,
			Nodes: scaleServers + workers, Steps: simSteps,
			StepsPerSec:   float64(simSteps) / elapsed.Seconds(),
			PeakHeapBytes: peak,
		})
	}

	for _, workers := range liveWorkers {
		nodes := scaleServers + workers
		cfg := cluster.LiveConfig{
			Model:      w.Model,
			Train:      w.Train,
			NumServers: scaleServers, FServers: 0,
			NumWorkers: workers, FWorkers: 0,
			Steps:   liveSteps,
			Batch:   scaleBatch,
			Timeout: scaleLiveTimeout,
			Seed:    s.Seed,
			Mailbox: mbox,
		}
		var dropped uint64
		elapsed, peak, err := measureRun(func() error {
			r, err := cluster.RunLive(cfg)
			if err == nil {
				dropped = r.DroppedOverflow
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("scale: live %d nodes: %w", nodes, err)
		}
		budget := scaleHeapBudget(nodes, dim, mbox)
		if peak > budget {
			res.WithinBudget = false
		}
		res.Rows = append(res.Rows, ScaleRow{
			Runtime: "live", Servers: scaleServers, Workers: workers,
			Nodes: nodes, Steps: liveSteps,
			StepsPerSec:     float64(liveSteps) / elapsed.Seconds(),
			PeakHeapBytes:   peak,
			HeapBudgetBytes: budget,
			DroppedOverflow: dropped,
		})
	}
	res.PeakRSSBytes = readVmHWM()
	return res, nil
}

// readVmHWM returns the process's resident-set high-water mark from
// /proc/self/status, or 0 where the file (or the field) is unavailable.
func readVmHWM() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// Format renders the sweep with the budget verdict CI greps for.
func (r *ScaleSweepResult) Format() string {
	var b strings.Builder
	b.WriteString("# Scale sweep: steps/sec and peak heap vs node count\n")
	fmt.Fprintf(&b, "(live rows bounded by mailbox %s; budget = %s floor + %d x nodes x cap x frame)\n",
		r.Mailbox, formatBytes(int(scaleHeapFloor)), scaleBudgetFactor)
	fmt.Fprintf(&b, "%-8s %-8s %-9s %-7s %-11s %-12s %-12s %-9s\n",
		"runtime", "nodes", "workers", "steps", "steps/sec", "peak heap", "budget", "overflow")
	for _, row := range r.Rows {
		budget := "-"
		if row.HeapBudgetBytes > 0 {
			budget = formatBytes(int(row.HeapBudgetBytes))
		}
		fmt.Fprintf(&b, "%-8s %-8d %-9d %-7d %-11.2f %-12s %-12s %-9d\n",
			row.Runtime, row.Nodes, row.Workers, row.Steps, row.StepsPerSec,
			formatBytes(int(row.PeakHeapBytes)), budget, row.DroppedOverflow)
	}
	if r.PeakRSSBytes > 0 {
		fmt.Fprintf(&b, "process VmHWM after sweep: %s\n", formatBytes(int(r.PeakRSSBytes)))
	}
	verdict := "yes"
	if !r.WithinBudget {
		verdict = "NO"
	}
	fmt.Fprintf(&b, "peak heap within budget: %s\n", verdict)
	b.WriteString("expected: steps/sec declines gracefully with nodes; live peak heap within budget at every population\n")
	return b.String()
}

// ScaleBenchJSON renders the sweep rows as the committed BENCH_scale.json
// baseline: indented, newline-terminated, stable field order. Timing is
// machine-dependent, so the committed numbers are an informational
// baseline — CI asserts the budget verdict, not row equality.
func ScaleBenchJSON(r *ScaleSweepResult) ([]byte, error) {
	payload := struct {
		Mailbox string     `json:"mailbox"`
		Rows    []ScaleRow `json:"rows"`
	}{Mailbox: r.Mailbox.String(), Rows: r.Rows}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
