package experiments

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// The headline determinism contract of the parallel engine: a full
// experiment — concurrent curves on the outside, chunked gradient/
// aggregation kernels on the inside — produces bit-identical results at
// parallelism 1 and parallelism N. Chunk boundaries are derived from
// problem sizes only and reductions fold in a fixed order, so the worker
// count is pure scheduling.
//
// The scale is chosen so the chunked BatchGradient path is actually
// exercised (batch 8 → two fixed example chunks).

var determinismScale = Scale{Steps: 6, Batch: 8, SmallBatch: 4, Examples: 160, Seed: 5}

func atParallelism[T any](t *testing.T, workers int, f func() (T, error)) T {
	t.Helper()
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	v, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func sameSeries(t *testing.T, label string, a, b *stats.Series) {
	t.Helper()
	if a.Name != b.Name || len(a.Points) != len(b.Points) {
		t.Fatalf("%s: series shape differs (%q/%d vs %q/%d)",
			label, a.Name, len(a.Points), b.Name, len(b.Points))
	}
	for i, p := range a.Points {
		q := b.Points[i]
		if p != q {
			t.Fatalf("%s: point %d differs across parallelism: %+v vs %+v", label, i, p, q)
		}
	}
}

func TestFig3BitIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	serial := atParallelism(t, 1, func() (*Fig3Result, error) { return Fig3(determinismScale) })
	for _, workers := range []int{4, 7} {
		par := atParallelism(t, workers, func() (*Fig3Result, error) { return Fig3(determinismScale) })
		for i := range serial.LargeBatch {
			sameSeries(t, "large batch", serial.LargeBatch[i], par.LargeBatch[i])
		}
		for i := range serial.SmallBatch {
			sameSeries(t, "small batch", serial.SmallBatch[i], par.SmallBatch[i])
		}
	}
}

func TestGARAblationBitIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	serial := atParallelism(t, 1, func() ([]GARAblationRow, error) { return GARAblation(determinismScale) })
	par := atParallelism(t, 4, func() ([]GARAblationRow, error) { return GARAblation(determinismScale) })
	if len(serial) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("row %d differs across parallelism: %+v vs %+v", i, serial[i], par[i])
		}
	}
}
