// Package dataset provides the training workloads used by the experiments.
//
// The paper evaluates on CIFAR-10. That dataset is not shipped here; instead
// SynthImg (see synthimg.go) generates a procedural 10-class image
// classification task with the same tensor shape and the same role in the
// pipeline — a non-convex vision task for the CNN substrate. Lower-dimensional
// workloads (Gaussian blobs, two spirals) are provided for fast tests and for
// the quickstart example.
package dataset

import (
	"fmt"

	"repro/internal/tensor"
)

// Dataset is an in-memory supervised classification dataset.
type Dataset struct {
	// X holds one flat feature vector per example (channels-first for
	// images).
	X [][]float64
	// Labels holds the class index of each example.
	Labels []int
	// NumClasses is the number of distinct classes.
	NumClasses int
	// FeatureDim is the length of each feature vector.
	FeatureDim int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks internal consistency (aligned slices, label range).
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Labels) {
		return fmt.Errorf("dataset: %d examples vs %d labels", len(d.X), len(d.Labels))
	}
	for i, x := range d.X {
		if len(x) != d.FeatureDim {
			return fmt.Errorf("dataset: example %d has dim %d, want %d", i, len(x), d.FeatureDim)
		}
		if d.Labels[i] < 0 || d.Labels[i] >= d.NumClasses {
			return fmt.Errorf("dataset: example %d has label %d outside [0,%d)",
				i, d.Labels[i], d.NumClasses)
		}
	}
	return nil
}

// Split partitions the dataset into a training set with trainFrac of the
// examples and a test set with the rest, after a seeded shuffle.
func (d *Dataset) Split(trainFrac float64, rng *tensor.RNG) (train, test *Dataset) {
	perm := rng.Perm(d.Len())
	nTrain := int(trainFrac * float64(d.Len()))
	mk := func(idx []int) *Dataset {
		out := &Dataset{
			X:          make([][]float64, len(idx)),
			Labels:     make([]int, len(idx)),
			NumClasses: d.NumClasses,
			FeatureDim: d.FeatureDim,
		}
		for i, p := range idx {
			out.X[i] = d.X[p]
			out.Labels[i] = d.Labels[p]
		}
		return out
	}
	return mk(perm[:nTrain]), mk(perm[nTrain:])
}

// Subset returns examples [lo, hi) as a view (shared feature storage).
func (d *Dataset) Subset(lo, hi int) *Dataset {
	return &Dataset{
		X:          d.X[lo:hi],
		Labels:     d.Labels[lo:hi],
		NumClasses: d.NumClasses,
		FeatureDim: d.FeatureDim,
	}
}

// Sampler draws random mini-batches from a dataset. Each worker node owns an
// independent Sampler (its G^(j) gradient distribution in the paper's
// notation), so gradient estimates at different workers are mutually
// independent, matching Assumption 3.
type Sampler struct {
	data *Dataset
	rng  *tensor.RNG
}

// NewSampler builds a sampler over d using the given generator.
func NewSampler(d *Dataset, rng *tensor.RNG) *Sampler {
	return &Sampler{data: d, rng: rng}
}

// Batch samples a mini-batch of the given size with replacement and returns
// feature and label views.
func (s *Sampler) Batch(size int) ([][]float64, []int) {
	xs := make([][]float64, size)
	labels := make([]int, size)
	for i := 0; i < size; i++ {
		j := s.rng.Intn(s.data.Len())
		xs[i] = s.data.X[j]
		labels[i] = s.data.Labels[j]
	}
	return xs, labels
}

// OneHot encodes a label as a one-hot vector of length numClasses.
func OneHot(label, numClasses int) []float64 {
	v := make([]float64, numClasses)
	v[label] = 1
	return v
}
