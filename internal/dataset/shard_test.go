package dataset

import (
	"testing"

	"repro/internal/tensor"
)

func TestShardIIDSizesAndCoverage(t *testing.T) {
	d := Blobs(100, 4, 3, 0.5, 10)
	shards, err := ShardIID(d, 7, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if total != 100 {
		t.Fatalf("shards cover %d examples, want 100", total)
	}
	// near-equal sizes
	for _, s := range shards {
		if s.Len() < 100/7 || s.Len() > 100/7+1 {
			t.Fatalf("uneven shard size %d", s.Len())
		}
	}
}

func TestShardErrors(t *testing.T) {
	d := Blobs(10, 2, 3, 0.5, 11)
	if _, err := ShardIID(d, 0, tensor.NewRNG(1)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := ShardIID(d, 11, tensor.NewRNG(1)); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := ShardByLabel(d, 0); err == nil {
		t.Fatal("k=0 accepted by label sharding")
	}
}

func TestShardByLabelIsSkewed(t *testing.T) {
	d := Blobs(400, 4, 3, 0.5, 12)
	byLabel, err := ShardByLabel(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	iid, err := ShardIID(d, 4, tensor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	skewLabel := LabelSkew(d, byLabel)
	skewIID := LabelSkew(d, iid)
	if skewLabel < 0.5 {
		t.Fatalf("label sharding not skewed: %v", skewLabel)
	}
	if skewIID > 0.2 {
		t.Fatalf("IID sharding unexpectedly skewed: %v", skewIID)
	}
	if skewLabel <= skewIID {
		t.Fatalf("label skew %v not above IID skew %v", skewLabel, skewIID)
	}
	// With 4 classes and 4 shards, each label shard is (nearly) pure.
	for _, s := range byLabel {
		first := s.Labels[0]
		impure := 0
		for _, l := range s.Labels {
			if l != first {
				impure++
			}
		}
		if impure > s.Len()/10 {
			t.Fatalf("label shard is %d/%d impure", impure, s.Len())
		}
	}
}

func TestLabelSkewDegenerateInputs(t *testing.T) {
	d := Blobs(10, 2, 3, 0.5, 13)
	if LabelSkew(d, nil) != 0 {
		t.Fatal("no shards should give skew 0")
	}
	empty := &Dataset{NumClasses: 2, FeatureDim: 2}
	if LabelSkew(empty, []*Dataset{empty}) != 0 {
		t.Fatal("empty dataset should give skew 0")
	}
}
