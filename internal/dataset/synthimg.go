package dataset

import (
	"math"

	"repro/internal/tensor"
)

// SynthImgConfig controls the procedural image generator.
type SynthImgConfig struct {
	// Size is the spatial side length (images are Size×Size×3,
	// channels-first). The paper uses 32 (CIFAR-10); the experiment harness
	// defaults to 8 for single-CPU runs.
	Size int
	// NumClasses is the number of classes (10 to mirror CIFAR-10).
	NumClasses int
	// Examples is the number of images to generate.
	Examples int
	// Noise is the per-pixel Gaussian noise std. Higher values make the task
	// harder; 0.25 gives CIFAR-like "plateaus then climbs" curves on the
	// tiny CNN.
	Noise float64
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultSynthImg returns the configuration used by the experiment harness.
func DefaultSynthImg(examples int) SynthImgConfig {
	return SynthImgConfig{Size: 8, NumClasses: 10, Examples: examples, Noise: 0.25, Seed: 1}
}

// SynthImg generates the "SynthImg" procedural image classification task:
// each class k is a distinct spatial/chromatic pattern (oriented gratings,
// radial blobs, checkerboards and color gradients parameterised by k),
// rendered at a random translation and amplitude, then corrupted with
// Gaussian pixel noise. Classes are balanced.
//
// The generator is the repository's substitute for CIFAR-10: it produces a
// 10-class, 3-channel image task whose Bayes error is controlled by Noise,
// exercising the identical CNN forward/backward and accuracy code paths.
func SynthImg(cfg SynthImgConfig) *Dataset {
	rng := tensor.NewRNG(cfg.Seed)
	n, s := cfg.Examples, cfg.Size
	d := &Dataset{
		X:          make([][]float64, n),
		Labels:     make([]int, n),
		NumClasses: cfg.NumClasses,
		FeatureDim: 3 * s * s,
	}
	for i := 0; i < n; i++ {
		label := i % cfg.NumClasses
		d.Labels[i] = label
		d.X[i] = renderClass(label, cfg, rng)
	}
	return d
}

// renderClass draws one image of the given class.
func renderClass(label int, cfg SynthImgConfig, rng *tensor.RNG) []float64 {
	s := cfg.Size
	img := make([]float64, 3*s*s)

	// Class-dependent pattern parameters. Deterministic in the label, so all
	// examples of a class share structure; randomness enters through phase,
	// amplitude and noise.
	angle := float64(label) * math.Pi / float64(cfg.NumClasses)
	freq := 1.0 + float64(label%5)*0.7
	phase := rng.Float64() * 2 * math.Pi
	amp := 0.75 + 0.5*rng.Float64()
	cx := float64(s)/2 + rng.Norm() // translated center for radial classes
	cy := float64(s)/2 + rng.Norm()

	cosA, sinA := math.Cos(angle), math.Sin(angle)
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			fx, fy := float64(x), float64(y)
			// Oriented grating along the class angle.
			u := (fx*cosA + fy*sinA) * 2 * math.Pi * freq / float64(s)
			grating := math.Sin(u + phase)
			// Radial component centred at (cx, cy).
			r := math.Hypot(fx-cx, fy-cy) / float64(s)
			radial := math.Cos(2 * math.Pi * freq * r)
			// Checker parity flips by class.
			checker := 0.0
			if (x/2+y/2)%2 == label%2 {
				checker = 0.5
			}
			base := amp * (0.6*grating + 0.4*radial)
			// Channel mixing: each class has its own chromatic signature.
			for c := 0; c < 3; c++ {
				w := 0.5 + 0.5*math.Cos(float64(label+c*3)*2*math.Pi/float64(cfg.NumClasses))
				v := w*base + checker*float64(c%2) + cfg.Noise*rng.Norm()
				img[(c*s+y)*s+x] = v
			}
		}
	}
	return img
}

// Blobs generates a k-class Gaussian blob dataset in 2 dimensions with class
// centres evenly spaced on a circle of the given radius. It is the fast,
// low-dimensional workload used by unit and integration tests.
func Blobs(examples, numClasses int, radius, std float64, seed uint64) *Dataset {
	rng := tensor.NewRNG(seed)
	d := &Dataset{
		X:          make([][]float64, examples),
		Labels:     make([]int, examples),
		NumClasses: numClasses,
		FeatureDim: 2,
	}
	for i := 0; i < examples; i++ {
		label := i % numClasses
		angle := 2 * math.Pi * float64(label) / float64(numClasses)
		d.Labels[i] = label
		d.X[i] = []float64{
			radius*math.Cos(angle) + std*rng.Norm(),
			radius*math.Sin(angle) + std*rng.Norm(),
		}
	}
	return d
}

// Spirals generates the classic two-spirals task: a non-linearly separable
// 2-class dataset that a linear model cannot solve, exercising the hidden
// layers of the MLP substrate.
func Spirals(examples int, noise float64, seed uint64) *Dataset {
	rng := tensor.NewRNG(seed)
	d := &Dataset{
		X:          make([][]float64, examples),
		Labels:     make([]int, examples),
		NumClasses: 2,
		FeatureDim: 2,
	}
	for i := 0; i < examples; i++ {
		label := i % 2
		t := 0.25 + 3*math.Pi*rng.Float64()
		sign := 1.0
		if label == 1 {
			sign = -1
		}
		d.Labels[i] = label
		d.X[i] = []float64{
			sign*t*math.Cos(t)/10 + noise*rng.Norm(),
			sign*t*math.Sin(t)/10 + noise*rng.Norm(),
		}
	}
	return d
}
