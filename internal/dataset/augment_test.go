package dataset

import (
	"testing"

	"repro/internal/tensor"
)

// img builds a 1-channel s×s test image with pixel value = y*s+x.
func img(s int) []float64 {
	out := make([]float64, s*s)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestAugmenterFlip(t *testing.T) {
	a := NewAugmenter(4, 1, 1.0, 0, 1) // always flip, never shift
	in := img(4)
	out := a.Apply(in)
	// Row 0 of input is [0 1 2 3]; flipped it is [3 2 1 0].
	want := []float64{3, 2, 1, 0}
	for x := 0; x < 4; x++ {
		if out[x] != want[x] {
			t.Fatalf("flip wrong: row0 = %v", out[:4])
		}
	}
	// Input untouched.
	if in[0] != 0 {
		t.Fatal("Apply mutated its input")
	}
	// Double flip is the identity.
	back := a.flip(append([]float64(nil), out...))
	for i := range in {
		if back[i] != in[i] {
			t.Fatal("flip is not an involution")
		}
	}
}

func TestAugmenterShift(t *testing.T) {
	a := NewAugmenter(4, 1, 0, 0, 2)
	in := img(4)
	out := a.shift(append([]float64(nil), in...), 1, 0) // right by 1
	// Column 0 zero-filled; out(y, x) = in(y, x−1) for x ≥ 1.
	for y := 0; y < 4; y++ {
		if out[y*4] != 0 {
			t.Fatalf("zero-fill missing at row %d: %v", y, out[y*4:y*4+4])
		}
		for x := 1; x < 4; x++ {
			if out[y*4+x] != in[y*4+x-1] {
				t.Fatalf("shift wrong at (%d,%d)", y, x)
			}
		}
	}
	// Energy never increases under zero-fill shifting.
	if tensor.Norm2(out) > tensor.Norm2(in) {
		t.Fatal("shift increased image energy")
	}
}

func TestAugmenterMultiChannel(t *testing.T) {
	a := NewAugmenter(2, 3, 1.0, 0, 2)
	in := make([]float64, 3*2*2)
	for i := range in {
		in[i] = float64(i)
	}
	out := a.Apply(in)
	if len(out) != len(in) {
		t.Fatalf("length changed: %d", len(out))
	}
	// Each channel transformed independently but consistently: the flip of
	// channel c row y [a b] is [b a].
	for c := 0; c < 3; c++ {
		base := c * 4
		if out[base] != in[base+1] || out[base+1] != in[base] {
			// a shift may have moved things; with MaxShift=2 on size 2 the
			// image can be shifted fully out. Just require finite output.
			continue
		}
	}
}

func TestAugmentedSamplerShapes(t *testing.T) {
	d := SynthImg(SynthImgConfig{Size: 8, NumClasses: 4, Examples: 40, Noise: 0.1, Seed: 5})
	base := NewSampler(d, tensor.NewRNG(6))
	aug := NewAugmenter(8, 3, 0.5, 1, 7)
	s := NewAugmentedSampler(base, aug)
	xs, labels := s.Batch(16)
	if len(xs) != 16 || len(labels) != 16 {
		t.Fatalf("batch sizes %d/%d", len(xs), len(labels))
	}
	for i, x := range xs {
		if len(x) != d.FeatureDim {
			t.Fatalf("augmented dim %d", len(x))
		}
		if labels[i] < 0 || labels[i] >= 4 {
			t.Fatalf("label %d", labels[i])
		}
	}
	// Dataset storage must be untouched by augmentation.
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
