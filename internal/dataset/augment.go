package dataset

import "repro/internal/tensor"

// Augmenter applies label-preserving random transformations to image
// examples at sampling time — the standard CIFAR-style horizontal-flip and
// shift augmentations, implemented for the channels-first layout used by
// the CNN substrate. Augmentation enlarges the effective dataset, which
// matters here because the synthetic workloads are small.
type Augmenter struct {
	// Size is the spatial side length of the (square) images.
	Size int
	// Channels is the channel count.
	Channels int
	// FlipProb is the probability of a horizontal mirror.
	FlipProb float64
	// MaxShift is the maximum absolute shift in pixels per axis (zero-fill).
	MaxShift int

	rng *tensor.RNG
}

// NewAugmenter builds an augmenter with its own generator.
func NewAugmenter(size, channels int, flipProb float64, maxShift int, seed uint64) *Augmenter {
	return &Augmenter{
		Size:     size,
		Channels: channels,
		FlipProb: flipProb,
		MaxShift: maxShift,
		rng:      tensor.NewRNG(seed),
	}
}

// Apply returns an augmented copy of img (the input is never modified).
func (a *Augmenter) Apply(img []float64) []float64 {
	out := make([]float64, len(img))
	copy(out, img)
	if a.FlipProb > 0 && a.rng.Float64() < a.FlipProb {
		out = a.flip(out)
	}
	if a.MaxShift > 0 {
		dx := a.rng.Intn(2*a.MaxShift+1) - a.MaxShift
		dy := a.rng.Intn(2*a.MaxShift+1) - a.MaxShift
		if dx != 0 || dy != 0 {
			out = a.shift(out, dx, dy)
		}
	}
	return out
}

// flip mirrors the image horizontally in place and returns it.
func (a *Augmenter) flip(img []float64) []float64 {
	s := a.Size
	for c := 0; c < a.Channels; c++ {
		base := c * s * s
		for y := 0; y < s; y++ {
			row := img[base+y*s : base+(y+1)*s]
			for x, xr := 0, s-1; x < xr; x, xr = x+1, xr-1 {
				row[x], row[xr] = row[xr], row[x]
			}
		}
	}
	return img
}

// shift translates the image by (dx, dy) with zero fill.
func (a *Augmenter) shift(img []float64, dx, dy int) []float64 {
	s := a.Size
	out := make([]float64, len(img))
	for c := 0; c < a.Channels; c++ {
		base := c * s * s
		for y := 0; y < s; y++ {
			sy := y - dy
			if sy < 0 || sy >= s {
				continue
			}
			for x := 0; x < s; x++ {
				sx := x - dx
				if sx < 0 || sx >= s {
					continue
				}
				out[base+y*s+x] = img[base+sy*s+sx]
			}
		}
	}
	return out
}

// AugmentedSampler wraps a Sampler so every drawn image passes through the
// augmenter. Labels are untouched (all transformations are
// label-preserving).
type AugmentedSampler struct {
	inner *Sampler
	aug   *Augmenter
}

// NewAugmentedSampler composes a sampler with an augmenter.
func NewAugmentedSampler(inner *Sampler, aug *Augmenter) *AugmentedSampler {
	return &AugmentedSampler{inner: inner, aug: aug}
}

// Batch draws and augments a mini-batch.
func (s *AugmentedSampler) Batch(size int) ([][]float64, []int) {
	xs, labels := s.inner.Batch(size)
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = s.aug.Apply(x)
	}
	return out, labels
}
