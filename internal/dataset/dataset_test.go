package dataset

import (
	"testing"

	"repro/internal/tensor"
)

func TestSynthImgShapeAndBalance(t *testing.T) {
	cfg := DefaultSynthImg(200)
	d := SynthImg(cfg)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.FeatureDim != 3*8*8 {
		t.Fatalf("FeatureDim = %d", d.FeatureDim)
	}
	counts := make([]int, d.NumClasses)
	for _, l := range d.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d examples, want 20", c, n)
		}
	}
}

func TestSynthImgDeterminism(t *testing.T) {
	cfg := DefaultSynthImg(50)
	a, b := SynthImg(cfg), SynthImg(cfg)
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatalf("generation not deterministic at example %d pixel %d", i, j)
			}
		}
	}
	cfg.Seed = 2
	c := SynthImg(cfg)
	same := true
	for j := range a.X[0] {
		if a.X[0][j] != c.X[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestSynthImgClassesAreDistinguishable(t *testing.T) {
	// Mean images of different classes must be further apart than the
	// within-class spread, otherwise the task is pure noise.
	cfg := SynthImgConfig{Size: 8, NumClasses: 4, Examples: 400, Noise: 0.25, Seed: 3}
	d := SynthImg(cfg)
	means := make([]tensor.Vector, cfg.NumClasses)
	counts := make([]int, cfg.NumClasses)
	for i := range means {
		means[i] = make(tensor.Vector, d.FeatureDim)
	}
	for i, x := range d.X {
		tensor.AddInPlace(means[d.Labels[i]], x)
		counts[d.Labels[i]]++
	}
	for i := range means {
		tensor.ScaleInPlace(means[i], 1/float64(counts[i]))
	}
	minBetween := tensor.MaxPairwiseDistance(means)
	for i := 0; i < len(means); i++ {
		for j := i + 1; j < len(means); j++ {
			if dd := tensor.Distance(means[i], means[j]); dd < minBetween {
				minBetween = dd
			}
		}
	}
	if minBetween < 0.5 {
		t.Fatalf("class means nearly coincide (min distance %v); task is unlearnable", minBetween)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := Blobs(10, 2, 3, 0.5, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.Labels[0] = 7
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range label not caught")
	}
	d.Labels[0] = 0
	d.X[0] = []float64{1}
	if err := d.Validate(); err == nil {
		t.Fatal("bad feature dim not caught")
	}
	d.X[0] = []float64{1, 2}
	d.Labels = d.Labels[:5]
	if err := d.Validate(); err == nil {
		t.Fatal("misaligned slices not caught")
	}
}

func TestSplitPartitions(t *testing.T) {
	d := Blobs(100, 4, 3, 0.5, 2)
	rng := tensor.NewRNG(9)
	train, test := d.Split(0.8, rng)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetView(t *testing.T) {
	d := Blobs(10, 2, 3, 0.5, 3)
	s := d.Subset(2, 5)
	if s.Len() != 3 {
		t.Fatalf("subset len %d", s.Len())
	}
	if &s.X[0][0] != &d.X[2][0] {
		t.Fatal("Subset should share storage")
	}
}

func TestSamplerBatch(t *testing.T) {
	d := Blobs(50, 5, 3, 0.5, 4)
	s := NewSampler(d, tensor.NewRNG(5))
	xs, labels := s.Batch(16)
	if len(xs) != 16 || len(labels) != 16 {
		t.Fatalf("batch sizes %d/%d", len(xs), len(labels))
	}
	for i := range xs {
		if len(xs[i]) != 2 {
			t.Fatalf("batch feature dim %d", len(xs[i]))
		}
		if labels[i] < 0 || labels[i] >= 5 {
			t.Fatalf("batch label %d out of range", labels[i])
		}
	}
}

func TestSamplersAreIndependent(t *testing.T) {
	d := Blobs(1000, 2, 3, 0.5, 6)
	s1 := NewSampler(d, tensor.NewRNG(100))
	s2 := NewSampler(d, tensor.NewRNG(200))
	_, l1 := s1.Batch(64)
	_, l2 := s2.Batch(64)
	same := 0
	for i := range l1 {
		if l1[i] == l2[i] {
			same++
		}
	}
	if same == len(l1) {
		t.Fatal("two samplers with different seeds drew identical batches")
	}
}

func TestOneHot(t *testing.T) {
	v := OneHot(2, 5)
	for i, x := range v {
		want := 0.0
		if i == 2 {
			want = 1
		}
		if x != want {
			t.Fatalf("OneHot = %v", v)
		}
	}
}

func TestSpiralsAndBlobsValid(t *testing.T) {
	if err := Spirals(100, 0.02, 7).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Blobs(100, 10, 4, 0.3, 8).Validate(); err != nil {
		t.Fatal(err)
	}
}
