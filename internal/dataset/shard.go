package dataset

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// ShardIID splits d into k equal-sized shards after a seeded shuffle, so
// each shard is an i.i.d. sample of the whole — the assumption underlying
// the paper's worker model (every worker's gradient distribution estimates
// the same ∇L).
func ShardIID(d *Dataset, k int, rng *tensor.RNG) ([]*Dataset, error) {
	if k <= 0 || k > d.Len() {
		return nil, fmt.Errorf("dataset: cannot split %d examples into %d shards", d.Len(), k)
	}
	perm := rng.Perm(d.Len())
	return buildShards(d, perm, k), nil
}

// ShardByLabel splits d into k label-skewed shards: examples are sorted by
// label before round-robin-free contiguous partitioning, so each shard sees
// only a few classes. This is the classic non-IID federated setting; it
// violates the paper's identical-gradient-distribution assumption and is
// provided to probe how far GuanYu degrades outside its theory (honest
// workers now disagree systematically, which robust aggregation partially
// mistakes for Byzantine behaviour).
func ShardByLabel(d *Dataset, k int) ([]*Dataset, error) {
	if k <= 0 || k > d.Len() {
		return nil, fmt.Errorf("dataset: cannot split %d examples into %d shards", d.Len(), k)
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return d.Labels[idx[a]] < d.Labels[idx[b]]
	})
	return buildShards(d, idx, k), nil
}

// buildShards partitions the index order into k near-equal contiguous runs.
func buildShards(d *Dataset, order []int, k int) []*Dataset {
	shards := make([]*Dataset, k)
	n := len(order)
	for s := 0; s < k; s++ {
		lo := s * n / k
		hi := (s + 1) * n / k
		shard := &Dataset{
			X:          make([][]float64, 0, hi-lo),
			Labels:     make([]int, 0, hi-lo),
			NumClasses: d.NumClasses,
			FeatureDim: d.FeatureDim,
		}
		for _, p := range order[lo:hi] {
			shard.X = append(shard.X, d.X[p])
			shard.Labels = append(shard.Labels, d.Labels[p])
		}
		shards[s] = shard
	}
	return shards
}

// LabelSkew measures how non-IID a sharding is: the mean, over shards, of
// the total-variation distance between the shard's label distribution and
// the global one. 0 means perfectly IID shards; values near 1 mean each
// shard sees almost disjoint classes.
func LabelSkew(global *Dataset, shards []*Dataset) float64 {
	if len(shards) == 0 || global.Len() == 0 {
		return 0
	}
	gdist := labelDist(global)
	var total float64
	for _, s := range shards {
		sdist := labelDist(s)
		var tv float64
		for c := 0; c < global.NumClasses; c++ {
			diff := sdist[c] - gdist[c]
			if diff < 0 {
				diff = -diff
			}
			tv += diff
		}
		total += tv / 2
	}
	return total / float64(len(shards))
}

func labelDist(d *Dataset) []float64 {
	dist := make([]float64, d.NumClasses)
	if d.Len() == 0 {
		return dist
	}
	for _, l := range d.Labels {
		dist[l]++
	}
	inv := 1 / float64(d.Len())
	for i := range dist {
		dist[i] *= inv
	}
	return dist
}
