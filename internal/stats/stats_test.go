package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func curve(name string, pts ...Point) *Series {
	s := &Series{Name: name}
	for _, p := range pts {
		s.Add(p)
	}
	return s
}

func TestSeriesAccessors(t *testing.T) {
	s := curve("x",
		Point{Step: 0, Time: 0, Accuracy: 0.1},
		Point{Step: 10, Time: 5, Accuracy: 0.5},
		Point{Step: 20, Time: 10, Accuracy: 0.4},
	)
	if s.FinalAccuracy() != 0.4 {
		t.Fatalf("final = %v", s.FinalAccuracy())
	}
	if s.BestAccuracy() != 0.5 {
		t.Fatalf("best = %v", s.BestAccuracy())
	}
	if s.StepsToAccuracy(0.5) != 10 {
		t.Fatalf("steps-to = %d", s.StepsToAccuracy(0.5))
	}
	if s.StepsToAccuracy(0.9) != -1 {
		t.Fatal("unreached target should be -1")
	}
	if s.TimeToAccuracy(0.5) != 5 {
		t.Fatalf("time-to = %v", s.TimeToAccuracy(0.5))
	}
	if !math.IsInf(s.TimeToAccuracy(0.9), 1) {
		t.Fatal("unreached target time should be +Inf")
	}
	if s.Throughput() != 2 {
		t.Fatalf("throughput = %v, want 20 steps / 10 s", s.Throughput())
	}
	empty := curve("e")
	if empty.FinalAccuracy() != 0 || empty.Throughput() != 0 {
		t.Fatal("empty series accessors should be 0")
	}
}

func TestOverheadPercent(t *testing.T) {
	base := curve("base", Point{Step: 10, Time: 100, Accuracy: 0.6})
	slow := curve("slow", Point{Step: 10, Time: 165, Accuracy: 0.6})
	if got := OverheadPercent(base, slow, 0.6); math.Abs(got-65) > 1e-9 {
		t.Fatalf("overhead = %v, want 65", got)
	}
	never := curve("never", Point{Step: 10, Time: 5, Accuracy: 0.2})
	if !math.IsNaN(OverheadPercent(base, never, 0.6)) {
		t.Fatal("unreachable target should give NaN")
	}
}

func TestAlignmentPerfectlyAligned(t *testing.T) {
	// Three collinear parameter vectors: all difference vectors parallel,
	// so cos φ must be exactly 1.
	u := tensor.Vector{1, 2, 3}
	thetas := []tensor.Vector{
		tensor.Scale(u, 1),
		tensor.Scale(u, 2),
		tensor.Scale(u, 4),
	}
	rec, ok := Alignment(40, thetas)
	if !ok {
		t.Fatal("alignment probe refused 3 vectors")
	}
	if math.Abs(rec.CosPhi-1) > 1e-12 {
		t.Fatalf("cos φ = %v, want 1", rec.CosPhi)
	}
	if rec.MaxDiff1 < rec.MaxDiff2 {
		t.Fatal("difference norms not sorted")
	}
	if rec.Step != 40 {
		t.Fatalf("step = %d", rec.Step)
	}
}

func TestAlignmentOrthogonal(t *testing.T) {
	thetas := []tensor.Vector{
		{0, 0}, {10, 0}, {0, 9},
	}
	rec, ok := Alignment(0, thetas)
	if !ok {
		t.Fatal("probe failed")
	}
	// Largest diffs: (10,0)−(0,9) = (10,−9) and (10,0)−(0,0) = (10,0);
	// far from parallel but not orthogonal; just check range and symmetry.
	if rec.CosPhi < 0 || rec.CosPhi > 1 {
		t.Fatalf("cos φ out of [0,1]: %v", rec.CosPhi)
	}
}

func TestAlignmentNeedsThreeVectors(t *testing.T) {
	if _, ok := Alignment(0, []tensor.Vector{{1}, {2}}); ok {
		t.Fatal("probe accepted 2 vectors")
	}
}

func TestFormatSeriesTable(t *testing.T) {
	a := curve("sysA", Point{Step: 0, Accuracy: 0.1}, Point{Step: 20, Accuracy: 0.6})
	b := curve("sysB", Point{Step: 0, Accuracy: 0.1})
	out := FormatSeriesTable("Fig 3a", "updates", []*Series{a, b}, false)
	for _, want := range []string{"Fig 3a", "sysA", "sysB", "0.6000", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	timeTable := FormatSeriesTable("Fig 3b", "seconds",
		[]*Series{curve("x", Point{Step: 5, Time: 1.25, Accuracy: 0.3})}, true)
	if !strings.Contains(timeTable, "1.25") {
		t.Fatalf("time axis missing:\n%s", timeTable)
	}
}

func TestFormatAlignmentTable(t *testing.T) {
	out := FormatAlignmentTable([]AlignmentRecord{
		{Step: 1340, CosPhi: 0.982, MaxDiff1: 1.41, MaxDiff2: 1.42},
	})
	for _, want := range []string{"Table 2", "1340", "0.98"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
