package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestSuspicionRates(t *testing.T) {
	s := NewSuspicion()
	// byz excluded 3/3 rounds, honest 1/3.
	s.Observe([]string{"byz", "honest"}, []string{"honest"})
	s.Observe([]string{"byz", "honest"}, []string{"honest"})
	s.Observe([]string{"byz", "honest"}, []string{"byz"})
	if r := s.Rate("byz"); r < 0.6 || r > 0.7 {
		t.Fatalf("byz rate %v, want 2/3", r)
	}
	if r := s.Rate("honest"); r < 0.3 || r > 0.4 {
		t.Fatalf("honest rate %v, want 1/3", r)
	}
	if s.Rate("unknown") != 0 {
		t.Fatal("unknown sender should have rate 0")
	}
}

func TestSuspicionRankingOrder(t *testing.T) {
	s := NewSuspicion()
	s.Observe([]string{"a", "b", "c"}, []string{"a", "b"})
	s.Observe([]string{"a", "b", "c"}, []string{"a"})
	ranks := s.Ranking()
	if len(ranks) != 3 {
		t.Fatalf("got %d rows", len(ranks))
	}
	if ranks[0].Sender != "c" || ranks[1].Sender != "b" || ranks[2].Sender != "a" {
		t.Fatalf("ranking order wrong: %+v", ranks)
	}
	if ranks[0].Rounds != 2 {
		t.Fatalf("rounds = %d", ranks[0].Rounds)
	}
	if !strings.Contains(s.Format(), "Suspicion ranking") {
		t.Fatal("format broken")
	}
}

func TestSuspicionConcurrentObservers(t *testing.T) {
	s := NewSuspicion()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Observe([]string{"x", "y"}, []string{"y"})
			}
		}()
	}
	wg.Wait()
	if r := s.Rate("x"); r != 1 {
		t.Fatalf("x rate %v", r)
	}
	ranks := s.Ranking()
	if ranks[0].Rounds != 800 {
		t.Fatalf("rounds = %d, want 800", ranks[0].Rounds)
	}
}
