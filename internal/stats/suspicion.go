package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Suspicion accumulates per-sender filtering statistics: every time a robust
// aggregation rule excludes a sender's vector, that sender's counter grows.
// Over a run, actually-Byzantine senders are excluded far more often than
// honest ones, giving operators an accountability signal the paper's
// protocol itself does not need but any production deployment wants.
//
// Suspicion is safe for concurrent use (live servers update it from their
// own goroutines).
type Suspicion struct {
	mu       sync.Mutex
	excluded map[string]int
	seen     map[string]int
}

// NewSuspicion returns an empty tracker.
func NewSuspicion() *Suspicion {
	return &Suspicion{
		excluded: make(map[string]int),
		seen:     make(map[string]int),
	}
}

// Observe records one aggregation round: all participating senders, and the
// subset of them whose vectors the rule kept.
func (s *Suspicion) Observe(participants []string, kept []string) {
	keptSet := make(map[string]bool, len(kept))
	for _, k := range kept {
		keptSet[k] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range participants {
		s.seen[p]++
		if !keptSet[p] {
			s.excluded[p]++
		}
	}
}

// Rate returns the exclusion rate of a sender in [0, 1] (0 for unknown
// senders).
func (s *Suspicion) Rate(sender string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := s.seen[sender]
	if seen == 0 {
		return 0
	}
	return float64(s.excluded[sender]) / float64(seen)
}

// SuspicionRank is one row of the ranking.
type SuspicionRank struct {
	// Sender is the node ID.
	Sender string
	// Rate is its exclusion rate in [0, 1].
	Rate float64
	// Rounds is how many aggregation rounds it participated in.
	Rounds int
}

// Ranking returns all senders ordered by descending exclusion rate.
func (s *Suspicion) Ranking() []SuspicionRank {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SuspicionRank, 0, len(s.seen))
	for sender, seen := range s.seen {
		out = append(out, SuspicionRank{
			Sender: sender,
			Rate:   float64(s.excluded[sender]) / float64(seen),
			Rounds: seen,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Rate != out[b].Rate {
			return out[a].Rate > out[b].Rate
		}
		return out[a].Sender < out[b].Sender
	})
	return out
}

// Format renders the ranking as a text table.
func (s *Suspicion) Format() string {
	var b strings.Builder
	b.WriteString("# Suspicion ranking (exclusion rate by robust aggregation)\n")
	fmt.Fprintf(&b, "%-10s %-10s %-8s\n", "sender", "rate", "rounds")
	for _, r := range s.Ranking() {
		fmt.Fprintf(&b, "%-10s %-10.3f %-8d\n", r.Sender, r.Rate, r.Rounds)
	}
	return b.String()
}
