// Package stats provides the measurement instruments of the evaluation:
// accuracy/time series recording, throughput computation, the parameter-
// drift diagnostic from the contraction proof, and the alignment probe that
// regenerates Table 2 of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/tensor"
)

// Point is one sample of a convergence curve: accuracy measured after a
// given number of model updates, at a given virtual time.
type Point struct {
	// Step is the model-update index (x-axis of Figures 3a/3c/4).
	Step int `json:"step"`
	// Time is the virtual time in seconds (x-axis of Figures 3b/3d).
	Time float64 `json:"timeSeconds"`
	// Accuracy is top-1 test accuracy in [0, 1].
	Accuracy float64 `json:"accuracy"`
	// Loss is the mean training loss observed at this step (0 if unknown).
	Loss float64 `json:"loss"`
	// Drift is the max pairwise distance between honest server models.
	Drift float64 `json:"drift"`
}

// Series is a named convergence curve.
type Series struct {
	// Name labels the curve (e.g. "vanilla TF", "GuanYu (fwrk=5, fps=1)").
	Name string `json:"name"`
	// Points are samples in increasing step order.
	Points []Point `json:"points"`
}

// Add appends a sample.
func (s *Series) Add(p Point) { s.Points = append(s.Points, p) }

// FinalAccuracy returns the accuracy of the last sample (0 if empty).
func (s *Series) FinalAccuracy() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Accuracy
}

// BestAccuracy returns the max accuracy over the curve.
func (s *Series) BestAccuracy() float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	return best
}

// StepsToAccuracy returns the first step at which the curve reaches the
// target accuracy, or -1 if it never does. This is the "convergence rate in
// model updates" comparison of Figure 3a/3c.
func (s *Series) StepsToAccuracy(target float64) int {
	for _, p := range s.Points {
		if p.Accuracy >= target {
			return p.Step
		}
	}
	return -1
}

// TimeToAccuracy returns the first virtual time at which the curve reaches
// the target accuracy, or +Inf if it never does. This is the comparison
// behind the 65% / 33% overhead numbers of Section 5.3.
func (s *Series) TimeToAccuracy(target float64) float64 {
	for _, p := range s.Points {
		if p.Accuracy >= target {
			return p.Time
		}
	}
	return math.Inf(1)
}

// Throughput returns model updates per virtual second over the whole run
// (0 for degenerate curves).
func (s *Series) Throughput() float64 {
	if len(s.Points) < 2 {
		return 0
	}
	last := s.Points[len(s.Points)-1]
	if last.Time <= 0 {
		return 0
	}
	return float64(last.Step) / last.Time
}

// OverheadPercent returns how much slower (in %) this curve reaches the
// target accuracy compared to the baseline curve; the paper reports
// vanilla-GuanYu-vs-vanilla-TF ≈ 65% and Byzantine-vs-vanilla-GuanYu ≤ 33%.
// Returns NaN when either curve never reaches the target.
func OverheadPercent(baseline, system *Series, target float64) float64 {
	b := baseline.TimeToAccuracy(target)
	s := system.TimeToAccuracy(target)
	if math.IsInf(b, 1) || math.IsInf(s, 1) || b == 0 {
		return math.NaN()
	}
	return (s - b) / b * 100
}

// AlignmentRecord is one row of Table 2: at a given step, the two largest
// parameter-difference norms among honest servers and the cosine of the
// angle between those two difference vectors. Values of cos φ close to 1
// support the paper's alignment assumption (Assumption 2).
type AlignmentRecord struct {
	// Step is the learning step at which the probe ran.
	Step int `json:"step"`
	// CosPhi is the cosine of the angle between the two largest difference
	// vectors.
	CosPhi float64 `json:"cosPhi"`
	// MaxDiff1 and MaxDiff2 are the two largest difference norms.
	MaxDiff1 float64 `json:"maxDiff1"`
	MaxDiff2 float64 `json:"maxDiff2"`
}

// Alignment computes the Table-2 probe over the honest servers' parameter
// vectors at one step: all pairwise difference vectors are formed, the two
// with the largest norms are kept, and the cosine of their angle returned.
// The sign is normalised to be non-negative (a difference vector and its
// negation describe the same line). Requires at least 3 vectors; returns
// false otherwise.
func Alignment(step int, thetas []tensor.Vector) (AlignmentRecord, bool) {
	if len(thetas) < 3 {
		return AlignmentRecord{}, false
	}
	type diff struct {
		v    tensor.Vector
		norm float64
	}
	diffs := make([]diff, 0, len(thetas)*(len(thetas)-1)/2)
	for i := 0; i < len(thetas); i++ {
		for j := i + 1; j < len(thetas); j++ {
			v := tensor.Sub(thetas[i], thetas[j])
			diffs = append(diffs, diff{v: v, norm: tensor.Norm2(v)})
		}
	}
	sort.Slice(diffs, func(a, b int) bool { return diffs[a].norm > diffs[b].norm })
	cos := tensor.CosineSimilarity(diffs[0].v, diffs[1].v)
	return AlignmentRecord{
		Step:     step,
		CosPhi:   math.Abs(cos),
		MaxDiff1: diffs[0].norm,
		MaxDiff2: diffs[1].norm,
	}, true
}

// FormatSeriesTable renders a set of curves as a step-indexed text table,
// one column per curve — the textual equivalent of one figure panel.
func FormatSeriesTable(title, xLabel string, curves []*Series, timeAxis bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, c := range curves {
		fmt.Fprintf(&b, " %22s", c.Name)
	}
	b.WriteByte('\n')
	rows := 0
	for _, c := range curves {
		if len(c.Points) > rows {
			rows = len(c.Points)
		}
	}
	for r := 0; r < rows; r++ {
		var x string
		for _, c := range curves {
			if r < len(c.Points) {
				if timeAxis {
					x = fmt.Sprintf("%.2f", c.Points[r].Time)
				} else {
					x = fmt.Sprintf("%d", c.Points[r].Step)
				}
				break
			}
		}
		fmt.Fprintf(&b, "%-12s", x)
		for _, c := range curves {
			if r < len(c.Points) {
				fmt.Fprintf(&b, " %22.4f", c.Points[r].Accuracy)
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTimeToAccuracyTable renders a time-axis figure panel as the time
// each system needs to first reach a ladder of accuracy levels — the
// faithful textual reading of "accuracy vs time" curves, since each curve
// has its own time stamps. Unreached levels print "-".
func FormatTimeToAccuracyTable(title string, curves []*Series, levels []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (seconds to first reach accuracy level)\n", title)
	fmt.Fprintf(&b, "%-10s", "accuracy")
	for _, c := range curves {
		fmt.Fprintf(&b, " %22s", c.Name)
	}
	b.WriteByte('\n')
	for _, lvl := range levels {
		fmt.Fprintf(&b, "%-10.2f", lvl)
		for _, c := range curves {
			t := c.TimeToAccuracy(lvl)
			if math.IsInf(t, 1) {
				fmt.Fprintf(&b, " %22s", "-")
			} else {
				fmt.Fprintf(&b, " %22.2f", t)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatAlignmentTable renders alignment records as the paper's Table 2.
func FormatAlignmentTable(records []AlignmentRecord) string {
	var b strings.Builder
	b.WriteString("# Table 2: alignment of parameter difference vectors\n")
	fmt.Fprintf(&b, "%-8s %-20s %-14s %-14s\n", "Step", "cos(phi)", "max diff1", "max diff2")
	for _, r := range records {
		fmt.Fprintf(&b, "%-8d %-20.16f %-14.7f %-14.7f\n", r.Step, r.CosPhi, r.MaxDiff1, r.MaxDiff2)
	}
	return b.String()
}
