// Package trace provides lightweight structured event recording for live
// deployments: per-node, per-step protocol events (phase completions, quorum
// membership, aggregation results) in a bounded ring buffer that can be
// dumped for post-mortem analysis. It is the observability layer a
// production release needs and the paper's prototype lacked.
//
// Recording is optional and cheap: a nil *Recorder is a valid no-op target,
// so instrumented code never branches on "is tracing enabled".
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// EventKind classifies protocol events.
type EventKind uint8

// Event kinds, one per instrumented protocol action.
const (
	// EventStepStart marks a node entering a learning step.
	EventStepStart EventKind = iota + 1
	// EventQuorumComplete marks a quorum being assembled.
	EventQuorumComplete
	// EventAggregate marks an aggregation-rule application.
	EventAggregate
	// EventUpdate marks a local parameter update.
	EventUpdate
	// EventBroadcast marks an outbound broadcast.
	EventBroadcast
	// EventError marks a node-level failure.
	EventError
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStepStart:
		return "step-start"
	case EventQuorumComplete:
		return "quorum-complete"
	case EventAggregate:
		return "aggregate"
	case EventUpdate:
		return "update"
	case EventBroadcast:
		return "broadcast"
	case EventError:
		return "error"
	default:
		return "unknown"
	}
}

// Event is one recorded protocol event.
type Event struct {
	// When is the wall-clock time the event was recorded.
	When time.Time
	// Node is the recording node's ID.
	Node string
	// Step is the learning step the event belongs to.
	Step int
	// Kind classifies the event.
	Kind EventKind
	// Detail is free-form context ("q̄=13 gradients from [...]").
	Detail string
}

// Recorder collects events into a bounded ring buffer. It is safe for
// concurrent use. A nil Recorder discards all events.
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	now   func() time.Time
	total int
}

// NewRecorder builds a recorder keeping the most recent capacity
// events, stamping them with the wall clock.
func NewRecorder(capacity int) *Recorder {
	//lint:allow-clock event timestamps default to wall time; NewRecorderWithClock injects a deterministic one
	return NewRecorderWithClock(capacity, time.Now)
}

// NewRecorderWithClock is NewRecorder with an injected clock: every
// recorded event's When comes from now(). Replay and tests pass a
// deterministic clock so two runs of the same schedule produce
// byte-identical timelines; a nil now falls back to the wall clock.
func NewRecorderWithClock(capacity int, now func() time.Time) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	if now == nil {
		//lint:allow-clock explicit nil opts back into wall time
		now = time.Now
	}
	return &Recorder{buf: make([]Event, capacity), now: now}
}

// Record appends an event; on a nil recorder it is a no-op.
func (r *Recorder) Record(node string, step int, kind EventKind, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = Event{When: r.now(), Node: node, Step: step, Kind: kind, Detail: detail}
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.total++
}

// Recordf is Record with fmt formatting of the detail.
func (r *Recorder) Recordf(node string, step int, kind EventKind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(node, step, kind, fmt.Sprintf(format, args...))
}

// Events returns the retained events in recording order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many events were recorded over the recorder's lifetime
// (including ones evicted from the ring).
func (r *Recorder) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Filter returns the retained events matching the node (empty = any) and
// kind (0 = any).
func (r *Recorder) Filter(node string, kind EventKind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if node != "" && e.Node != node {
			continue
		}
		if kind != 0 && e.Kind != kind {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Dump renders the retained events as text, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		fmt.Fprintf(&b, "%s %-6s step=%-5d %-16s %s\n",
			e.When.Format("15:04:05.000"), e.Node, e.Step, e.Kind, e.Detail)
	}
	return b.String()
}
