package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record("ps0", 0, EventUpdate, "x") // must not panic
	r.Recordf("ps0", 0, EventUpdate, "%d", 1)
	if r.Events() != nil || r.Total() != 0 {
		t.Fatal("nil recorder returned data")
	}
}

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder(16)
	r.Record("ps0", 3, EventQuorumComplete, "q=5")
	r.Recordf("wrk1", 3, EventBroadcast, "to %d servers", 6)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events", len(ev))
	}
	if ev[0].Node != "ps0" || ev[0].Kind != EventQuorumComplete || ev[0].Step != 3 {
		t.Fatalf("event 0 wrong: %+v", ev[0])
	}
	if ev[1].Detail != "to 6 servers" {
		t.Fatalf("Recordf detail wrong: %q", ev[1].Detail)
	}
	if r.Total() != 2 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record("n", i, EventUpdate, "")
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	// Oldest retained is step 6, newest step 9, in order.
	for i, e := range ev {
		if e.Step != 6+i {
			t.Fatalf("eviction order wrong: %+v", ev)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(16)
	r.Record("ps0", 0, EventUpdate, "")
	r.Record("ps1", 0, EventUpdate, "")
	r.Record("ps0", 1, EventError, "boom")
	if n := len(r.Filter("ps0", 0)); n != 2 {
		t.Fatalf("node filter: %d", n)
	}
	if n := len(r.Filter("", EventError)); n != 1 {
		t.Fatalf("kind filter: %d", n)
	}
	if n := len(r.Filter("ps1", EventError)); n != 0 {
		t.Fatalf("combined filter: %d", n)
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRecorder(8)
	r.now = func() time.Time { return time.Date(2026, 6, 13, 10, 30, 0, 0, time.UTC) }
	r.Record("ps0", 7, EventAggregate, "multi-krum kept 8/13")
	out := r.Dump()
	for _, want := range []string{"ps0", "step=7", "aggregate", "kept 8/13", "10:30:00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("n", i, EventUpdate, "")
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d, want 800", r.Total())
	}
	if len(r.Events()) != 128 {
		t.Fatalf("retained %d, want 128 (ring capacity)", len(r.Events()))
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventStepStart, EventQuorumComplete, EventAggregate,
		EventUpdate, EventBroadcast, EventError}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("bad kind string %q", s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "unknown" {
		t.Fatal("unknown kind not handled")
	}
}

func TestNewRecorderWithClock(t *testing.T) {
	tick := time.Unix(1000, 0)
	r := NewRecorderWithClock(8, func() time.Time {
		tick = tick.Add(time.Second)
		return tick
	})
	for i := 0; i < 3; i++ {
		r.Record("n", i, EventUpdate, "")
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	for i, e := range events {
		if want := time.Unix(1000+int64(i)+1, 0); !e.When.Equal(want) {
			t.Fatalf("event %d stamped %v, want %v (injected clock ignored?)", i, e.When, want)
		}
	}
	if NewRecorderWithClock(8, nil) == nil {
		t.Fatal("nil clock should fall back to wall time, not fail")
	}
}
