package nn

import "repro/internal/tensor"

// NewMLP builds a multi-layer perceptron with ReLU activations between the
// given layer sizes, e.g. NewMLP(rng, 2, 16, 16, 3) for a 2-feature,
// 3-class classifier. Used for the blob/spiral workloads.
func NewMLP(rng *tensor.RNG, sizes ...int) *Sequential {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	layers := make([]Layer, 0, 2*len(sizes)-3)
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewDense(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			layers = append(layers, NewReLU(sizes[i+1]))
		}
	}
	return NewSequential(layers...)
}

// TinyConvNet describes the scaled-down CNN used by the experiment harness
// (sized so a full convergence run fits on a single-CPU CI machine). Input is
// an 8×8×3 channels-first image, output is numClasses logits.
func NewTinyConvNet(rng *tensor.RNG, numClasses int) *Sequential {
	conv1 := NewConv2D(3, 8, 8, 6, 3, 3, 1, 1, rng)  // → 6×8×8
	pool1 := NewMaxPool2D(6, 8, 8, 2, 2, 0)          // → 6×4×4
	conv2 := NewConv2D(6, 4, 4, 12, 3, 3, 1, 1, rng) // → 12×4×4
	pool2 := NewMaxPool2D(12, 4, 4, 2, 2, 0)         // → 12×2×2
	return NewSequential(
		conv1, NewReLU(conv1.OutputSize()), pool1,
		conv2, NewReLU(conv2.OutputSize()), pool2,
		NewDense(48, 32, rng), NewReLU(32),
		NewDense(32, numClasses, rng),
	)
}

// NewCIFARNet builds the exact architecture of Table 1 in the paper: a
// 32×32×3 input, two 5×5×64 convolutions each followed by 3×3 stride-2 max
// pooling, then fully-connected layers of 384, 192 and 10 units — about
// 1.75 M parameters.
func NewCIFARNet(rng *tensor.RNG) *Sequential {
	conv1 := NewConv2D(3, 32, 32, 64, 5, 5, 1, 2, rng)  // SAME → 64×32×32
	pool1 := NewMaxPool2D(64, 32, 32, 3, 2, 1)          // → 64×16×16
	conv2 := NewConv2D(64, 16, 16, 64, 5, 5, 1, 2, rng) // SAME → 64×16×16
	pool2 := NewMaxPool2D(64, 16, 16, 3, 2, 1)          // → 64×8×8
	return NewSequential(
		conv1, NewReLU(conv1.OutputSize()), pool1,
		conv2, NewReLU(conv2.OutputSize()), pool2,
		NewDense(64*8*8, 384, rng), NewReLU(384),
		NewDense(384, 192, rng), NewReLU(192),
		NewDense(192, 10, rng),
	)
}

// BatchGradient runs forward/backward over a mini-batch and returns the mean
// loss and the mean gradient vector ∇̂L(θ). This is the worker-side gradient
// estimation primitive of the protocol.
func BatchGradient(m *Sequential, xs [][]float64, labels []int) (float64, tensor.Vector) {
	if len(xs) == 0 || len(xs) != len(labels) {
		panic("nn: BatchGradient needs a non-empty, aligned batch")
	}
	m.ZeroGrad()
	var total float64
	for i, x := range xs {
		out := m.Forward(x)
		loss, dout := SoftmaxCrossEntropy(out, labels[i])
		total += loss
		m.Backward(dout)
	}
	inv := 1 / float64(len(xs))
	return total * inv, m.GradVector(inv)
}

// Accuracy returns top-1 accuracy of the model over the given examples.
func Accuracy(m *Sequential, xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if Argmax(m.Forward(x)) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}
