package nn

import (
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// NewMLP builds a multi-layer perceptron with ReLU activations between the
// given layer sizes, e.g. NewMLP(rng, 2, 16, 16, 3) for a 2-feature,
// 3-class classifier. Used for the blob/spiral workloads.
func NewMLP(rng *tensor.RNG, sizes ...int) *Sequential {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	layers := make([]Layer, 0, 2*len(sizes)-3)
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewDense(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			layers = append(layers, NewReLU(sizes[i+1]))
		}
	}
	return NewSequential(layers...)
}

// TinyConvNet describes the scaled-down CNN used by the experiment harness
// (sized so a full convergence run fits on a single-CPU CI machine). Input is
// an 8×8×3 channels-first image, output is numClasses logits.
func NewTinyConvNet(rng *tensor.RNG, numClasses int) *Sequential {
	conv1 := NewConv2D(3, 8, 8, 6, 3, 3, 1, 1, rng)  // → 6×8×8
	pool1 := NewMaxPool2D(6, 8, 8, 2, 2, 0)          // → 6×4×4
	conv2 := NewConv2D(6, 4, 4, 12, 3, 3, 1, 1, rng) // → 12×4×4
	pool2 := NewMaxPool2D(12, 4, 4, 2, 2, 0)         // → 12×2×2
	return NewSequential(
		conv1, NewReLU(conv1.OutputSize()), pool1,
		conv2, NewReLU(conv2.OutputSize()), pool2,
		NewDense(48, 32, rng), NewReLU(32),
		NewDense(32, numClasses, rng),
	)
}

// NewCIFARNet builds the exact architecture of Table 1 in the paper: a
// 32×32×3 input, two 5×5×64 convolutions each followed by 3×3 stride-2 max
// pooling, then fully-connected layers of 384, 192 and 10 units — about
// 1.75 M parameters.
func NewCIFARNet(rng *tensor.RNG) *Sequential {
	conv1 := NewConv2D(3, 32, 32, 64, 5, 5, 1, 2, rng)  // SAME → 64×32×32
	pool1 := NewMaxPool2D(64, 32, 32, 3, 2, 1)          // → 64×16×16
	conv2 := NewConv2D(64, 16, 16, 64, 5, 5, 1, 2, rng) // SAME → 64×16×16
	pool2 := NewMaxPool2D(64, 16, 16, 3, 2, 1)          // → 64×8×8
	return NewSequential(
		conv1, NewReLU(conv1.OutputSize()), pool1,
		conv2, NewReLU(conv2.OutputSize()), pool2,
		NewDense(64*8*8, 384, rng), NewReLU(384),
		NewDense(384, 192, rng), NewReLU(192),
		NewDense(192, 10, rng),
	)
}

// gradChunk is the fixed example-chunk size of BatchGradient. Chunk
// boundaries depend only on the batch size — never on the worker count — so
// the chunked path returns bit-identical gradients at any parallelism.
const gradChunk = 4

// accChunk is the example-chunk size of Accuracy (pure counting, so any
// decomposition is exact; the grain only bounds dispatch overhead).
const accChunk = 64

// BatchGradient runs forward/backward over a mini-batch and returns the mean
// loss and the mean gradient vector ∇̂L(θ). This is the worker-side gradient
// estimation primitive of the protocol — and the hottest loop of a worker —
// so batches larger than gradChunk are split into fixed example chunks that
// run on the worker pool, each on its own model replica with its own
// gradient accumulators.
//
// Determinism: the chunk list is derived from len(xs) alone, every chunk
// accumulates its examples in order on identical parameters, and the chunk
// gradients are folded in chunk order. The result is therefore bit-identical
// whether the chunks run on one goroutine or many. Batches of at most
// gradChunk examples take the single-chunk path, which is the classic serial
// accumulate-in-model loop.
func BatchGradient(m *Sequential, xs [][]float64, labels []int) (float64, tensor.Vector) {
	if len(xs) == 0 || len(xs) != len(labels) {
		panic("nn: BatchGradient needs a non-empty, aligned batch")
	}
	n := len(xs)
	chunks := parallel.ChunkCount(n, gradChunk)
	inv := 1 / float64(n)
	if chunks == 1 {
		m.ZeroGrad()
		var total float64
		for i, x := range xs {
			out := m.Forward(x)
			loss, dout := SoftmaxCrossEntropy(out, labels[i])
			total += loss
			m.Backward(dout)
		}
		return total * inv, m.GradVector(inv)
	}

	// chunkLoss runs chunk c's examples on mw (gradients accumulate in mw's
	// buffers, zeroed first) and returns the chunk's loss sum.
	chunkLoss := func(mw *Sequential, c int) float64 {
		eLo, eHi := c*gradChunk, min((c+1)*gradChunk, n)
		mw.ZeroGrad()
		var sum float64
		for e := eLo; e < eHi; e++ {
			out := mw.Forward(xs[e])
			loss, dout := SoftmaxCrossEntropy(out, labels[e])
			sum += loss
			mw.Backward(dout)
		}
		return sum
	}

	if parallel.Workers() == 1 || parallel.Busy() {
		// Serial execution of the same chunk list, folded incrementally in
		// chunk order: identical values to the parallel path (each chunk is
		// computed from zeroed buffers and folded in the same order) with
		// O(d) scratch instead of O(chunks·d) and no replicas.
		total := chunkLoss(m, 0)
		grad := m.GradVector(1)
		scratch := make(tensor.Vector, len(grad))
		for c := 1; c < chunks; c++ {
			total += chunkLoss(m, c)
			m.GradVectorInto(scratch, 1)
			tensor.AddInPlace(grad, scratch)
		}
		tensor.ScaleInPlace(grad, inv)
		return total * inv, grad
	}

	// Replicas are cloned up front: worker slot 0 reuses m, the others get
	// deep copies. Cloning inside the parallel region would race with slot
	// 0 already mutating m's gradient buffers. Replicas and chunk gradients
	// are deliberately per-call — the models this harness trains are a few
	// thousand parameters, where a clone is ~tens of µs against a chunk's
	// forward/backward work; caching replicas across calls would trade that
	// for cross-call mutable state on Sequential.
	replicas := make([]*Sequential, min(parallel.Workers(), chunks))
	replicas[0] = m
	for w := 1; w < len(replicas); w++ {
		replicas[w] = m.Clone()
	}
	losses := make([]float64, chunks)
	parts := make([]tensor.Vector, chunks)
	parallel.ForWorker(chunks, 1, len(replicas), func(w, lo, hi int) {
		for c := lo; c < hi; c++ {
			losses[c] = chunkLoss(replicas[w], c)
			parts[c] = replicas[w].GradVector(1)
		}
	})

	// Ordered reduction: fold chunk gradients and losses in chunk order.
	grad := parts[0]
	for c := 1; c < chunks; c++ {
		tensor.AddInPlace(grad, parts[c])
	}
	tensor.ScaleInPlace(grad, inv)
	var total float64
	for _, l := range losses {
		total += l
	}
	return total * inv, grad
}

// Accuracy returns top-1 accuracy of the model over the given examples.
// Large evaluation sets are counted in parallel example chunks, each on its
// own model replica; correctness counts are integers, so the result is exact
// at any parallelism.
func Accuracy(m *Sequential, xs [][]float64, labels []int) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	chunks := parallel.ChunkCount(n, accChunk)
	if chunks == 1 || parallel.Workers() == 1 || parallel.Busy() {
		correct := 0
		for i, x := range xs {
			if Argmax(m.Forward(x)) == labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(n)
	}
	replicas := make([]*Sequential, min(parallel.Workers(), chunks))
	replicas[0] = m
	for w := 1; w < len(replicas); w++ {
		replicas[w] = m.Clone()
	}
	counts := make([]int, chunks)
	parallel.ForWorker(chunks, 1, len(replicas), func(w, lo, hi int) {
		mw := replicas[w]
		for c := lo; c < hi; c++ {
			correct := 0
			for e := c * accChunk; e < n && e < (c+1)*accChunk; e++ {
				if Argmax(mw.Forward(xs[e])) == labels[e] {
					correct++
				}
			}
			counts[c] = correct
		}
	})
	correct := 0
	for _, c := range counts {
		correct += c
	}
	return float64(correct) / float64(n)
}
