package nn

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// These tests pin the worker count and assert the parallel kernels are
// bit-identical to serial execution — the property the whole parallel layer
// is built around (fixed chunk boundaries, ordered reduction, element-
// independent decomposition). Run under -race they also exercise the
// concurrency of every nn kernel.

func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := parallel.SetWorkers(n)
	t.Cleanup(func() { parallel.SetWorkers(prev) })
}

func gradBatch(n int) ([][]float64, []int) {
	rng := tensor.NewRNG(77)
	xs := make([][]float64, n)
	labels := make([]int, n)
	for i := range xs {
		xs[i] = rng.NormVec(make([]float64, 3*8*8), 0, 1)
		labels[i] = i % 10
	}
	return xs, labels
}

func TestBatchGradientBitIdenticalAcrossWorkers(t *testing.T) {
	xs, labels := gradBatch(16) // 16 examples → 4 fixed chunks
	run := func(workers int) (float64, tensor.Vector) {
		withWorkers(t, workers)
		m := NewTinyConvNet(tensor.NewRNG(5), 10)
		return BatchGradient(m, xs, labels)
	}
	wantLoss, wantGrad := run(1)
	for _, w := range []int{2, 4, 7} {
		loss, grad := run(w)
		if loss != wantLoss {
			t.Fatalf("workers=%d changed the loss: %v vs %v", w, loss, wantLoss)
		}
		for i := range grad {
			if grad[i] != wantGrad[i] {
				t.Fatalf("workers=%d changed gradient coordinate %d: %v vs %v",
					w, i, grad[i], wantGrad[i])
			}
		}
	}
}

// TestBatchGradientSingleChunkMatchesClassicSerial pins the contract that a
// batch of at most gradChunk examples goes down the classic serial
// accumulate-in-model path — the exact arithmetic of the pre-parallel
// implementation.
func TestBatchGradientSingleChunkMatchesClassicSerial(t *testing.T) {
	withWorkers(t, 4)
	xs, labels := gradBatch(gradChunk)
	m := NewTinyConvNet(tensor.NewRNG(5), 10)
	gotLoss, gotGrad := BatchGradient(m, xs, labels)

	// Reference: the classic serial loop, accumulated in the model.
	ref := NewTinyConvNet(tensor.NewRNG(5), 10)
	ref.ZeroGrad()
	var total float64
	for i, x := range xs {
		out := ref.Forward(x)
		loss, dout := SoftmaxCrossEntropy(out, labels[i])
		total += loss
		ref.Backward(dout)
	}
	inv := 1 / float64(len(xs))
	wantLoss, wantGrad := total*inv, ref.GradVector(inv)

	if gotLoss != wantLoss {
		t.Fatalf("loss %v != classic serial %v", gotLoss, wantLoss)
	}
	for i := range gotGrad {
		if gotGrad[i] != wantGrad[i] {
			t.Fatalf("gradient coordinate %d: %v != classic serial %v",
				i, gotGrad[i], wantGrad[i])
		}
	}
}

func TestConvBackwardTwoPassMatchesOnePass(t *testing.T) {
	withWorkers(t, 4)
	rng := tensor.NewRNG(11)
	// Large enough that the two-pass gate triggers on its own in Backward.
	c1 := NewConv2D(8, 16, 16, 16, 3, 3, 1, 1, rng)
	c2 := c1.Clone().(*Conv2D)
	x := rng.NormVec(make([]float64, 8*16*16), 0, 1)
	dout := rng.NormVec(make([]float64, c1.OutputSize()), 0, 1)

	c1.Forward(x)
	din1 := append([]float64(nil), c1.backwardOnePass(dout)...)
	c2.Forward(x)
	perOC := c2.outH * c2.outW * c2.inC * c2.kH * c2.kW
	din2 := c2.backwardTwoPass(dout, perOC)

	for i := range din1 {
		if din1[i] != din2[i] {
			t.Fatalf("din[%d]: one-pass %v vs two-pass %v", i, din1[i], din2[i])
		}
	}
	for b, g1 := range c1.Grads() {
		g2 := c2.Grads()[b]
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("grad buffer %d cell %d: one-pass %v vs two-pass %v",
					b, i, g1[i], g2[i])
			}
		}
	}
}

func TestConvForwardBitIdenticalAcrossWorkers(t *testing.T) {
	rng := tensor.NewRNG(13)
	conv := NewConv2D(3, 32, 32, 64, 5, 5, 1, 2, rng) // clears the size gate
	x := rng.NormVec(make([]float64, 3*32*32), 0, 1)
	withWorkers(t, 1)
	want := append([]float64(nil), conv.Forward(x)...)
	for _, w := range []int{2, 4} {
		withWorkers(t, w)
		got := conv.Forward(x)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d changed forward output %d", w, i)
			}
		}
	}
}

func TestAccuracyExactAcrossWorkers(t *testing.T) {
	rng := tensor.NewRNG(17)
	m := NewTinyConvNet(rng, 10)
	xs := make([][]float64, 300)
	labels := make([]int, 300)
	for i := range xs {
		xs[i] = rng.NormVec(make([]float64, 3*8*8), 0, 1)
		labels[i] = i % 10
	}
	withWorkers(t, 1)
	want := Accuracy(m, xs, labels)
	for _, w := range []int{2, 4} {
		withWorkers(t, w)
		if got := Accuracy(m, xs, labels); got != want {
			t.Fatalf("workers=%d changed accuracy: %v vs %v", w, got, want)
		}
	}
}
