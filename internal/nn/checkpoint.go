package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Checkpoint is the serialized state of a model: its flattened parameter
// vector plus the dimension for integrity checking. The architecture itself
// is code, not data — loading requires a structurally identical model, which
// mirrors how the protocol ships raw parameter vectors between replicas.
type Checkpoint struct {
	// Dim is the parameter-space dimension d.
	Dim int
	// Theta is the flattened parameter vector.
	Theta tensor.Vector
	// Step optionally records the training step the snapshot was taken at.
	Step int
}

// SaveCheckpoint writes the model's current parameters to w (gob-encoded).
func SaveCheckpoint(w io.Writer, m *Sequential, step int) error {
	ck := Checkpoint{Dim: m.ParamCount(), Theta: m.ParamVector(), Step: step}
	if err := gob.NewEncoder(w).Encode(&ck); err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint from r and installs it into m. It
// returns the recorded step. The model must have the same parameter count
// as the one that produced the checkpoint.
func LoadCheckpoint(r io.Reader, m *Sequential) (int, error) {
	var ck Checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	if ck.Dim != len(ck.Theta) {
		return 0, fmt.Errorf("nn: corrupt checkpoint: dim %d vs %d values", ck.Dim, len(ck.Theta))
	}
	if !tensor.IsFinite(ck.Theta) {
		return 0, fmt.Errorf("nn: corrupt checkpoint: non-finite parameters")
	}
	if err := m.SetParamVector(ck.Theta); err != nil {
		return 0, err
	}
	return ck.Step, nil
}
