package nn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(40)
	m := NewTinyConvNet(rng, 10)
	want := m.ParamVector()

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m, 123); err != nil {
		t.Fatal(err)
	}

	other := NewTinyConvNet(tensor.NewRNG(41), 10) // different init
	step, err := LoadCheckpoint(&buf, other)
	if err != nil {
		t.Fatal(err)
	}
	if step != 123 {
		t.Fatalf("step = %d", step)
	}
	got := other.ParamVector()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoint mismatch at %d", i)
		}
	}
}

func TestCheckpointDimensionMismatch(t *testing.T) {
	rng := tensor.NewRNG(42)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, NewMLP(rng, 2, 3, 2), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf, NewMLP(rng, 4, 4, 2)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	rng := tensor.NewRNG(43)
	m := NewMLP(rng, 2, 3, 2)

	// Truncated stream.
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m, 0); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	if _, err := LoadCheckpoint(trunc, m); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}

	// Non-finite parameters.
	theta := m.ParamVector()
	theta[0] = math.NaN()
	if err := m.SetParamVector(theta); err != nil {
		t.Fatal(err)
	}
	var nanBuf bytes.Buffer
	if err := SaveCheckpoint(&nanBuf, m, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&nanBuf, m); err == nil {
		t.Fatal("NaN checkpoint accepted")
	}
}
