package nn

import "math"

// ReLU is the rectified-linear activation, applied element-wise.
type ReLU struct {
	size   int
	mask   []bool
	outBuf []float64
	dinBuf []float64
}

var _ Layer = (*ReLU)(nil)

// NewReLU builds a ReLU over activations of the given size.
func NewReLU(size int) *ReLU {
	return &ReLU{
		size:   size,
		mask:   make([]bool, size),
		outBuf: make([]float64, size),
		dinBuf: make([]float64, size),
	}
}

// Forward computes max(0, x).
func (r *ReLU) Forward(x []float64) []float64 {
	for i, v := range x {
		if v > 0 {
			r.outBuf[i] = v
			r.mask[i] = true
		} else {
			r.outBuf[i] = 0
			r.mask[i] = false
		}
	}
	return r.outBuf
}

// Backward zeroes the gradient where the forward input was non-positive.
func (r *ReLU) Backward(dout []float64) []float64 {
	for i, d := range dout {
		if r.mask[i] {
			r.dinBuf[i] = d
		} else {
			r.dinBuf[i] = 0
		}
	}
	return r.dinBuf
}

// Params returns no parameters (ReLU is parameter-free).
func (r *ReLU) Params() [][]float64 { return nil }

// Grads returns no gradients.
func (r *ReLU) Grads() [][]float64 { return nil }

// OutputSize returns the activation size.
func (r *ReLU) OutputSize() int { return r.size }

// Clone returns a fresh ReLU of the same size.
func (r *ReLU) Clone() Layer { return NewReLU(r.size) }

// Tanh is the hyperbolic-tangent activation, applied element-wise.
type Tanh struct {
	size   int
	outBuf []float64
	dinBuf []float64
}

var _ Layer = (*Tanh)(nil)

// NewTanh builds a Tanh over activations of the given size.
func NewTanh(size int) *Tanh {
	return &Tanh{
		size:   size,
		outBuf: make([]float64, size),
		dinBuf: make([]float64, size),
	}
}

// Forward computes tanh(x).
func (t *Tanh) Forward(x []float64) []float64 {
	for i, v := range x {
		t.outBuf[i] = math.Tanh(v)
	}
	return t.outBuf
}

// Backward uses d tanh(x)/dx = 1 − tanh²(x) from the cached output.
func (t *Tanh) Backward(dout []float64) []float64 {
	for i, d := range dout {
		y := t.outBuf[i]
		t.dinBuf[i] = d * (1 - y*y)
	}
	return t.dinBuf
}

// Params returns no parameters.
func (t *Tanh) Params() [][]float64 { return nil }

// Grads returns no gradients.
func (t *Tanh) Grads() [][]float64 { return nil }

// OutputSize returns the activation size.
func (t *Tanh) OutputSize() int { return t.size }

// Clone returns a fresh Tanh of the same size.
func (t *Tanh) Clone() Layer { return NewTanh(t.size) }

// Sigmoid is the logistic activation, applied element-wise.
type Sigmoid struct {
	size   int
	outBuf []float64
	dinBuf []float64
}

var _ Layer = (*Sigmoid)(nil)

// NewSigmoid builds a Sigmoid over activations of the given size.
func NewSigmoid(size int) *Sigmoid {
	return &Sigmoid{
		size:   size,
		outBuf: make([]float64, size),
		dinBuf: make([]float64, size),
	}
}

// Forward computes 1/(1+e^−x), branch-stabilised for large |x|.
func (s *Sigmoid) Forward(x []float64) []float64 {
	for i, v := range x {
		if v >= 0 {
			e := math.Exp(-v)
			s.outBuf[i] = 1 / (1 + e)
		} else {
			e := math.Exp(v)
			s.outBuf[i] = e / (1 + e)
		}
	}
	return s.outBuf
}

// Backward uses dσ/dx = σ(1−σ) from the cached output.
func (s *Sigmoid) Backward(dout []float64) []float64 {
	for i, d := range dout {
		y := s.outBuf[i]
		s.dinBuf[i] = d * y * (1 - y)
	}
	return s.dinBuf
}

// Params returns no parameters.
func (s *Sigmoid) Params() [][]float64 { return nil }

// Grads returns no gradients.
func (s *Sigmoid) Grads() [][]float64 { return nil }

// OutputSize returns the activation size.
func (s *Sigmoid) OutputSize() int { return s.size }

// Clone returns a fresh Sigmoid of the same size.
func (s *Sigmoid) Clone() Layer { return NewSigmoid(s.size) }
