// Package nn is a from-scratch neural-network substrate: dense and
// convolutional layers with explicit forward/backward passes, softmax
// cross-entropy loss, and a Sequential model whose parameters can be
// flattened into a single vector in R^d.
//
// It replaces the role TensorFlow's low-level APIs play in the paper: GuanYu
// only requires two operations from the learning framework — "estimate a
// stochastic gradient of the loss at parameters θ" and "apply an additive
// update to θ" — and this package provides exactly that contract
// (Model.SetParamVector, Model.Gradient).
//
// Conventions: activations are flat []float64 slices. Image tensors are
// stored channels-first, i.e. element (c, y, x) of a C×H×W tensor lives at
// index (c*H+y)*W + x.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a Sequential model.
//
// Forward consumes the input activation and returns the output activation.
// Backward consumes dL/d(output), accumulates dL/d(params) into the layer's
// gradient buffers, and returns dL/d(input). A layer must tolerate repeated
// Backward calls between ZeroGrad calls (gradients accumulate, enabling
// mini-batch averaging by the caller).
type Layer interface {
	// Forward runs the layer on x and returns the output. The returned slice
	// is owned by the layer and valid until the next Forward call.
	Forward(x []float64) []float64

	// Backward propagates the output gradient and returns the input
	// gradient. Must be called after Forward with a matching activation.
	Backward(dout []float64) []float64

	// Params returns views of the layer's parameter buffers (may be empty).
	// Mutating the returned slices mutates the layer.
	Params() [][]float64

	// Grads returns views of the gradient buffers, parallel to Params.
	Grads() [][]float64

	// OutputSize returns the length of the activation Forward produces.
	OutputSize() int

	// Clone returns a deep copy of the layer (parameters included, scratch
	// state excluded). Each node in a deployment owns an independent clone.
	Clone() Layer
}

// Sequential chains layers into a model and provides the flattened-parameter
// view GuanYu operates on.
type Sequential struct {
	layers []Layer
	dim    int // total parameter count, cached
}

// NewSequential builds a model from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	m := &Sequential{layers: layers}
	for _, l := range layers {
		for _, p := range l.Params() {
			m.dim += len(p)
		}
	}
	return m
}

// Layers returns the model's layers (for introspection, e.g. Table 1).
func (m *Sequential) Layers() []Layer { return m.layers }

// ParamCount returns d, the dimension of the parameter space.
func (m *Sequential) ParamCount() int { return m.dim }

// Forward runs the full model on input x.
func (m *Sequential) Forward(x []float64) []float64 {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dL/d(output) through all layers, accumulating
// parameter gradients. Returns dL/d(input).
func (m *Sequential) Backward(dout []float64) []float64 {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dout = m.layers[i].Backward(dout)
	}
	return dout
}

// ZeroGrad clears every gradient buffer.
func (m *Sequential) ZeroGrad() {
	for _, l := range m.layers {
		for _, g := range l.Grads() {
			for i := range g {
				g[i] = 0
			}
		}
	}
}

// ParamVector copies all parameters into a single vector θ ∈ R^d. The order
// is deterministic (layer order, then buffer order).
func (m *Sequential) ParamVector() tensor.Vector {
	out := make(tensor.Vector, 0, m.dim)
	for _, l := range m.layers {
		for _, p := range l.Params() {
			out = append(out, p...)
		}
	}
	return out
}

// SetParamVector scatters θ back into the layer buffers. It returns an error
// if the dimension does not match the model.
func (m *Sequential) SetParamVector(theta tensor.Vector) error {
	if len(theta) != m.dim {
		return fmt.Errorf("nn: parameter vector has dimension %d, model needs %d",
			len(theta), m.dim)
	}
	off := 0
	for _, l := range m.layers {
		for _, p := range l.Params() {
			copy(p, theta[off:off+len(p)])
			off += len(p)
		}
	}
	return nil
}

// GradVector copies all accumulated gradients into a single vector, scaled by
// alpha (callers pass 1/batchSize to average per-example gradients).
func (m *Sequential) GradVector(alpha float64) tensor.Vector {
	out := make(tensor.Vector, m.dim)
	m.GradVectorInto(out, alpha)
	return out
}

// GradVectorInto is the allocation-free form of GradVector: it copies the
// accumulated gradients into dst, scaled by alpha. dst must have the model's
// dimension (a programming error otherwise, so it panics in line with
// package policy).
func (m *Sequential) GradVectorInto(dst tensor.Vector, alpha float64) {
	if len(dst) != m.dim {
		panic(fmt.Sprintf("nn: gradient destination has dimension %d, model needs %d",
			len(dst), m.dim))
	}
	off := 0
	for _, l := range m.layers {
		for _, g := range l.Grads() {
			copy(dst[off:off+len(g)], g)
			off += len(g)
		}
	}
	if alpha != 1 {
		tensor.ScaleInPlace(dst, alpha)
	}
}

// Clone returns an independent deep copy of the model.
func (m *Sequential) Clone() *Sequential {
	layers := make([]Layer, len(m.layers))
	for i, l := range m.layers {
		layers[i] = l.Clone()
	}
	return NewSequential(layers...)
}

// Summary returns one line per layer: name, output size, parameter count.
// Used to regenerate Table 1 of the paper.
func (m *Sequential) Summary() []LayerInfo {
	infos := make([]LayerInfo, 0, len(m.layers))
	for _, l := range m.layers {
		var n int
		for _, p := range l.Params() {
			n += len(p)
		}
		infos = append(infos, LayerInfo{
			Name:       fmt.Sprintf("%T", l),
			OutputSize: l.OutputSize(),
			ParamCount: n,
		})
	}
	return infos
}

// LayerInfo describes one layer for model summaries.
type LayerInfo struct {
	Name       string
	OutputSize int
	ParamCount int
}
