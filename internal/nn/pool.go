package nn

import "math"

// MaxPool2D is a max-pooling layer over channels-first C×H×W activations
// with zero-free padding: padded positions are treated as −∞ and can never
// win the max, matching standard framework semantics.
type MaxPool2D struct {
	c, inH, inW int
	k, stride   int
	pad         int
	outH, outW  int
	argmax      []int // index into the input for each output element
	outBuf      []float64
	dinBuf      []float64
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D builds a pooling layer with a k×k window.
func NewMaxPool2D(c, inH, inW, k, stride, pad int) *MaxPool2D {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("nn: MaxPool2D output size is non-positive")
	}
	return &MaxPool2D{
		c: c, inH: inH, inW: inW,
		k: k, stride: stride, pad: pad,
		outH: outH, outW: outW,
		argmax: make([]int, c*outH*outW),
		outBuf: make([]float64, c*outH*outW),
		dinBuf: make([]float64, c*inH*inW),
	}
}

// OutputShape returns (channels, height, width) of the output activation.
func (p *MaxPool2D) OutputShape() (int, int, int) { return p.c, p.outH, p.outW }

// Forward computes the window maxima and records their positions.
func (p *MaxPool2D) Forward(x []float64) []float64 {
	for ch := 0; ch < p.c; ch++ {
		inBase := ch * p.inH * p.inW
		for oy := 0; oy < p.outH; oy++ {
			for ox := 0; ox < p.outW; ox++ {
				best := math.Inf(-1)
				bestIdx := -1
				iy0 := oy*p.stride - p.pad
				ix0 := ox*p.stride - p.pad
				for ky := 0; ky < p.k; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= p.inH {
						continue
					}
					for kx := 0; kx < p.k; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= p.inW {
							continue
						}
						idx := inBase + iy*p.inW + ix
						if x[idx] > best {
							best = x[idx]
							bestIdx = idx
						}
					}
				}
				o := (ch*p.outH+oy)*p.outW + ox
				p.outBuf[o] = best
				p.argmax[o] = bestIdx
			}
		}
	}
	return p.outBuf
}

// Backward routes each output gradient to the input position that won the
// max in the forward pass.
func (p *MaxPool2D) Backward(dout []float64) []float64 {
	for i := range p.dinBuf {
		p.dinBuf[i] = 0
	}
	for o, g := range dout {
		if idx := p.argmax[o]; idx >= 0 {
			p.dinBuf[idx] += g
		}
	}
	return p.dinBuf
}

// Params returns no parameters (pooling is parameter-free).
func (p *MaxPool2D) Params() [][]float64 { return nil }

// Grads returns no gradients.
func (p *MaxPool2D) Grads() [][]float64 { return nil }

// OutputSize returns c·outH·outW.
func (p *MaxPool2D) OutputSize() int { return p.c * p.outH * p.outW }

// Clone returns a fresh pooling layer of the same geometry.
func (p *MaxPool2D) Clone() Layer {
	return NewMaxPool2D(p.c, p.inH, p.inW, p.k, p.stride, p.pad)
}
