package nn

import (
	"math"

	"repro/internal/tensor"
)

// Dense is a fully-connected layer: y = W·x + b.
type Dense struct {
	in, out int

	w     *tensor.Matrix // out × in
	b     []float64
	gradW *tensor.Matrix
	gradB []float64

	lastIn  []float64 // retained for Backward
	outBuf  []float64
	dinBuf  []float64
	paramsV [][]float64
	gradsV  [][]float64
}

var _ Layer = (*Dense)(nil)

// NewDense builds an in→out fully-connected layer with He-uniform
// initialisation (suited to the ReLU activations used throughout).
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{
		in:    in,
		out:   out,
		w:     tensor.NewMatrix(out, in),
		b:     make([]float64, out),
		gradW: tensor.NewMatrix(out, in),
		gradB: make([]float64, out),

		outBuf: make([]float64, out),
		dinBuf: make([]float64, in),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.w.Data {
		d.w.Data[i] = (2*rng.Float64() - 1) * limit
	}
	d.paramsV = [][]float64{d.w.Data, d.b}
	d.gradsV = [][]float64{d.gradW.Data, d.gradB}
	return d
}

// Forward computes W·x + b.
func (d *Dense) Forward(x []float64) []float64 {
	d.lastIn = x
	d.w.MatVec(d.outBuf, x)
	for i := range d.outBuf {
		d.outBuf[i] += d.b[i]
	}
	return d.outBuf
}

// Backward accumulates dL/dW += dout·xᵀ and dL/db += dout, and returns
// dL/dx = Wᵀ·dout.
func (d *Dense) Backward(dout []float64) []float64 {
	d.gradW.AddOuter(1, dout, d.lastIn)
	for i := range dout {
		d.gradB[i] += dout[i]
	}
	d.w.MatVecT(d.dinBuf, dout)
	return d.dinBuf
}

// Params returns [weights, bias].
func (d *Dense) Params() [][]float64 { return d.paramsV }

// Grads returns [dW, db].
func (d *Dense) Grads() [][]float64 { return d.gradsV }

// OutputSize returns the layer's output width.
func (d *Dense) OutputSize() int { return d.out }

// Clone returns a deep copy with fresh scratch buffers.
func (d *Dense) Clone() Layer {
	c := &Dense{
		in:     d.in,
		out:    d.out,
		w:      d.w.Clone(),
		b:      append([]float64(nil), d.b...),
		gradW:  tensor.NewMatrix(d.out, d.in),
		gradB:  make([]float64, d.out),
		outBuf: make([]float64, d.out),
		dinBuf: make([]float64, d.in),
	}
	c.paramsV = [][]float64{c.w.Data, c.b}
	c.gradsV = [][]float64{c.gradW.Data, c.gradB}
	return c
}
