package nn

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// convTarget is the per-chunk work (multiply-adds) of the parallel
// convolution kernels. The harness TinyConvNet falls below it and runs the
// inline serial path; the Table-1 CIFAR network clears it comfortably.
const convTarget = 1 << 16

// Conv2D is a 2-D convolution over channels-first C×H×W activations with
// zero padding and square stride. Kernels are stored as a flat buffer of
// shape outC×inC×kH×kW.
type Conv2D struct {
	inC, inH, inW  int
	outC, kH, kW   int
	stride, pad    int
	outH, outW     int
	kern           []float64 // outC*inC*kH*kW
	bias           []float64 // outC
	gradKern       []float64
	gradBias       []float64
	lastIn         []float64
	outBuf, dinBuf []float64
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a convolution layer. Output spatial dims are
// (in + 2·pad − k)/stride + 1 per axis. It panics on a non-positive output
// size — a construction-time programming error, in line with package policy
// of panicking only on misuse.
func NewConv2D(inC, inH, inW, outC, kH, kW, stride, pad int, rng *tensor.RNG) *Conv2D {
	outH := (inH+2*pad-kH)/stride + 1
	outW := (inW+2*pad-kW)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("nn: Conv2D output size is non-positive")
	}
	c := &Conv2D{
		inC: inC, inH: inH, inW: inW,
		outC: outC, kH: kH, kW: kW,
		stride: stride, pad: pad,
		outH: outH, outW: outW,
		kern:     make([]float64, outC*inC*kH*kW),
		bias:     make([]float64, outC),
		gradKern: make([]float64, outC*inC*kH*kW),
		gradBias: make([]float64, outC),
		outBuf:   make([]float64, outC*outH*outW),
		dinBuf:   make([]float64, inC*inH*inW),
	}
	fanIn := float64(inC * kH * kW)
	limit := math.Sqrt(6.0 / fanIn)
	for i := range c.kern {
		c.kern[i] = (2*rng.Float64() - 1) * limit
	}
	return c
}

// OutputShape returns (channels, height, width) of the output activation.
func (c *Conv2D) OutputShape() (int, int, int) { return c.outC, c.outH, c.outW }

// Forward computes the convolution. Output channels are independent, so the
// channel loop is chunked across the worker pool (each output cell written
// by exactly one chunk — identical results at any parallelism); small layers
// collapse to the inline serial path.
func (c *Conv2D) Forward(x []float64) []float64 {
	c.lastIn = x
	perOC := c.outH * c.outW * c.inC * c.kH * c.kW
	parallel.For(c.outC, parallel.GrainFor(perOC, convTarget), func(ocLo, ocHi int) {
		c.forwardChannels(x, ocLo, ocHi)
	})
	return c.outBuf
}

// forwardChannels computes output channels [ocLo, ocHi).
func (c *Conv2D) forwardChannels(x []float64, ocLo, ocHi int) {
	for oc := ocLo; oc < ocHi; oc++ {
		b := c.bias[oc]
		for oy := 0; oy < c.outH; oy++ {
			for ox := 0; ox < c.outW; ox++ {
				sum := b
				iy0 := oy*c.stride - c.pad
				ix0 := ox*c.stride - c.pad
				for ic := 0; ic < c.inC; ic++ {
					kBase := (oc*c.inC + ic) * c.kH * c.kW
					inBase := ic * c.inH * c.inW
					for ky := 0; ky < c.kH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= c.inH {
							continue
						}
						kRow := kBase + ky*c.kW
						inRow := inBase + iy*c.inW
						for kx := 0; kx < c.kW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= c.inW {
								continue
							}
							sum += c.kern[kRow+kx] * x[inRow+ix]
						}
					}
				}
				c.outBuf[(oc*c.outH+oy)*c.outW+ox] = sum
			}
		}
	}
}

// Backward accumulates kernel/bias gradients and returns dL/d(input).
//
// Two variants produce bit-identical results: the one-pass serial loop, and
// a two-pass parallel form — pass A owns the weight gradients (chunked over
// output channels, which partition gradKern and gradBias) and pass B owns
// the input gradient (chunked over input channels, which partition dinBuf).
// Each accumulated cell receives the same contributions in the same order in
// both variants, so the split is purely a scheduling choice.
func (c *Conv2D) Backward(dout []float64) []float64 {
	perOC := c.outH * c.outW * c.inC * c.kH * c.kW
	if total := perOC * c.outC; total >= 2*convTarget && parallel.Workers() > 1 && !parallel.Busy() {
		return c.backwardTwoPass(dout, perOC)
	}
	return c.backwardOnePass(dout)
}

// backwardOnePass is the serial kernel: one sweep accumulating weight and
// input gradients together.
func (c *Conv2D) backwardOnePass(dout []float64) []float64 {
	din := c.dinBuf
	for i := range din {
		din[i] = 0
	}
	x := c.lastIn
	for oc := 0; oc < c.outC; oc++ {
		for oy := 0; oy < c.outH; oy++ {
			for ox := 0; ox < c.outW; ox++ {
				g := dout[(oc*c.outH+oy)*c.outW+ox]
				if g == 0 {
					continue
				}
				c.gradBias[oc] += g
				iy0 := oy*c.stride - c.pad
				ix0 := ox*c.stride - c.pad
				for ic := 0; ic < c.inC; ic++ {
					kBase := (oc*c.inC + ic) * c.kH * c.kW
					inBase := ic * c.inH * c.inW
					for ky := 0; ky < c.kH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= c.inH {
							continue
						}
						kRow := kBase + ky*c.kW
						inRow := inBase + iy*c.inW
						for kx := 0; kx < c.kW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= c.inW {
								continue
							}
							c.gradKern[kRow+kx] += g * x[inRow+ix]
							din[inRow+ix] += g * c.kern[kRow+kx]
						}
					}
				}
			}
		}
	}
	return din
}

// backwardTwoPass runs the weight-gradient and input-gradient sweeps as two
// parallel passes. See Backward for why it is bit-identical to the one-pass
// form.
func (c *Conv2D) backwardTwoPass(dout []float64, perOC int) []float64 {
	x := c.lastIn
	// Pass A: gradKern and gradBias, partitioned by output channel. Loop
	// order matches backwardOnePass (oy, ox, ic, ky, kx inside oc), so every
	// gradKern/gradBias cell accumulates its contributions in the same order.
	parallel.For(c.outC, parallel.GrainFor(perOC, convTarget), func(ocLo, ocHi int) {
		for oc := ocLo; oc < ocHi; oc++ {
			for oy := 0; oy < c.outH; oy++ {
				for ox := 0; ox < c.outW; ox++ {
					g := dout[(oc*c.outH+oy)*c.outW+ox]
					if g == 0 {
						continue
					}
					c.gradBias[oc] += g
					iy0 := oy*c.stride - c.pad
					ix0 := ox*c.stride - c.pad
					for ic := 0; ic < c.inC; ic++ {
						kBase := (oc*c.inC + ic) * c.kH * c.kW
						inBase := ic * c.inH * c.inW
						for ky := 0; ky < c.kH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= c.inH {
								continue
							}
							kRow := kBase + ky*c.kW
							inRow := inBase + iy*c.inW
							for kx := 0; kx < c.kW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= c.inW {
									continue
								}
								c.gradKern[kRow+kx] += g * x[inRow+ix]
							}
						}
					}
				}
			}
		}
	})
	// Pass B: dinBuf, partitioned by input channel. For a fixed input cell
	// the contributions arrive ordered by (oc, oy, ox, ky, kx) — exactly the
	// order the one-pass sweep produces for that cell.
	din := c.dinBuf
	perIC := c.outC * c.outH * c.outW * c.kH * c.kW
	parallel.For(c.inC, parallel.GrainFor(perIC, convTarget), func(icLo, icHi int) {
		for ic := icLo; ic < icHi; ic++ {
			inBase := ic * c.inH * c.inW
			for i := inBase; i < inBase+c.inH*c.inW; i++ {
				din[i] = 0
			}
			for oc := 0; oc < c.outC; oc++ {
				kBase := (oc*c.inC + ic) * c.kH * c.kW
				for oy := 0; oy < c.outH; oy++ {
					for ox := 0; ox < c.outW; ox++ {
						g := dout[(oc*c.outH+oy)*c.outW+ox]
						if g == 0 {
							continue
						}
						iy0 := oy*c.stride - c.pad
						ix0 := ox*c.stride - c.pad
						for ky := 0; ky < c.kH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= c.inH {
								continue
							}
							kRow := kBase + ky*c.kW
							inRow := inBase + iy*c.inW
							for kx := 0; kx < c.kW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= c.inW {
									continue
								}
								din[inRow+ix] += g * c.kern[kRow+kx]
							}
						}
					}
				}
			}
		}
	})
	return din
}

// Params returns [kernels, bias].
func (c *Conv2D) Params() [][]float64 { return [][]float64{c.kern, c.bias} }

// Grads returns [dKernels, dBias].
func (c *Conv2D) Grads() [][]float64 { return [][]float64{c.gradKern, c.gradBias} }

// OutputSize returns outC·outH·outW.
func (c *Conv2D) OutputSize() int { return c.outC * c.outH * c.outW }

// Clone returns a deep copy with fresh scratch buffers.
func (c *Conv2D) Clone() Layer {
	cp := *c
	cp.kern = append([]float64(nil), c.kern...)
	cp.bias = append([]float64(nil), c.bias...)
	cp.gradKern = make([]float64, len(c.gradKern))
	cp.gradBias = make([]float64, len(c.gradBias))
	cp.outBuf = make([]float64, len(c.outBuf))
	cp.dinBuf = make([]float64, len(c.dinBuf))
	cp.lastIn = nil
	return &cp
}
