package nn

import (
	"math"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over channels-first C×H×W activations with
// zero padding and square stride. Kernels are stored as a flat buffer of
// shape outC×inC×kH×kW.
type Conv2D struct {
	inC, inH, inW  int
	outC, kH, kW   int
	stride, pad    int
	outH, outW     int
	kern           []float64 // outC*inC*kH*kW
	bias           []float64 // outC
	gradKern       []float64
	gradBias       []float64
	lastIn         []float64
	outBuf, dinBuf []float64
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a convolution layer. Output spatial dims are
// (in + 2·pad − k)/stride + 1 per axis. It panics on a non-positive output
// size — a construction-time programming error, in line with package policy
// of panicking only on misuse.
func NewConv2D(inC, inH, inW, outC, kH, kW, stride, pad int, rng *tensor.RNG) *Conv2D {
	outH := (inH+2*pad-kH)/stride + 1
	outW := (inW+2*pad-kW)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("nn: Conv2D output size is non-positive")
	}
	c := &Conv2D{
		inC: inC, inH: inH, inW: inW,
		outC: outC, kH: kH, kW: kW,
		stride: stride, pad: pad,
		outH: outH, outW: outW,
		kern:     make([]float64, outC*inC*kH*kW),
		bias:     make([]float64, outC),
		gradKern: make([]float64, outC*inC*kH*kW),
		gradBias: make([]float64, outC),
		outBuf:   make([]float64, outC*outH*outW),
		dinBuf:   make([]float64, inC*inH*inW),
	}
	fanIn := float64(inC * kH * kW)
	limit := math.Sqrt(6.0 / fanIn)
	for i := range c.kern {
		c.kern[i] = (2*rng.Float64() - 1) * limit
	}
	return c
}

// OutputShape returns (channels, height, width) of the output activation.
func (c *Conv2D) OutputShape() (int, int, int) { return c.outC, c.outH, c.outW }

// Forward computes the convolution.
func (c *Conv2D) Forward(x []float64) []float64 {
	c.lastIn = x
	for oc := 0; oc < c.outC; oc++ {
		b := c.bias[oc]
		for oy := 0; oy < c.outH; oy++ {
			for ox := 0; ox < c.outW; ox++ {
				sum := b
				iy0 := oy*c.stride - c.pad
				ix0 := ox*c.stride - c.pad
				for ic := 0; ic < c.inC; ic++ {
					kBase := ((oc*c.inC+ic)*c.kH)*c.kW - 0
					inBase := ic * c.inH * c.inW
					for ky := 0; ky < c.kH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= c.inH {
							continue
						}
						kRow := kBase + ky*c.kW
						inRow := inBase + iy*c.inW
						for kx := 0; kx < c.kW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= c.inW {
								continue
							}
							sum += c.kern[kRow+kx] * x[inRow+ix]
						}
					}
				}
				c.outBuf[(oc*c.outH+oy)*c.outW+ox] = sum
			}
		}
	}
	return c.outBuf
}

// Backward accumulates kernel/bias gradients and returns dL/d(input).
func (c *Conv2D) Backward(dout []float64) []float64 {
	din := c.dinBuf
	for i := range din {
		din[i] = 0
	}
	x := c.lastIn
	for oc := 0; oc < c.outC; oc++ {
		for oy := 0; oy < c.outH; oy++ {
			for ox := 0; ox < c.outW; ox++ {
				g := dout[(oc*c.outH+oy)*c.outW+ox]
				if g == 0 {
					continue
				}
				c.gradBias[oc] += g
				iy0 := oy*c.stride - c.pad
				ix0 := ox*c.stride - c.pad
				for ic := 0; ic < c.inC; ic++ {
					kBase := (oc*c.inC + ic) * c.kH * c.kW
					inBase := ic * c.inH * c.inW
					for ky := 0; ky < c.kH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= c.inH {
							continue
						}
						kRow := kBase + ky*c.kW
						inRow := inBase + iy*c.inW
						for kx := 0; kx < c.kW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= c.inW {
								continue
							}
							c.gradKern[kRow+kx] += g * x[inRow+ix]
							din[inRow+ix] += g * c.kern[kRow+kx]
						}
					}
				}
			}
		}
	}
	return din
}

// Params returns [kernels, bias].
func (c *Conv2D) Params() [][]float64 { return [][]float64{c.kern, c.bias} }

// Grads returns [dKernels, dBias].
func (c *Conv2D) Grads() [][]float64 { return [][]float64{c.gradKern, c.gradBias} }

// OutputSize returns outC·outH·outW.
func (c *Conv2D) OutputSize() int { return c.outC * c.outH * c.outW }

// Clone returns a deep copy with fresh scratch buffers.
func (c *Conv2D) Clone() Layer {
	cp := *c
	cp.kern = append([]float64(nil), c.kern...)
	cp.bias = append([]float64(nil), c.bias...)
	cp.gradKern = make([]float64, len(c.gradKern))
	cp.gradBias = make([]float64, len(c.gradBias))
	cp.outBuf = make([]float64, len(c.outBuf))
	cp.dinBuf = make([]float64, len(c.dinBuf))
	cp.lastIn = nil
	return &cp
}
