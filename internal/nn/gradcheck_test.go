package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates dLoss/dθ by central finite differences, where the
// loss is softmax cross-entropy of the model output on (x, label).
func numericalGrad(m *Sequential, x []float64, label int) tensor.Vector {
	const h = 1e-5
	theta := m.ParamVector()
	grad := make(tensor.Vector, len(theta))
	for i := range theta {
		orig := theta[i]

		theta[i] = orig + h
		if err := m.SetParamVector(theta); err != nil {
			panic(err)
		}
		lp, _ := SoftmaxCrossEntropy(m.Forward(x), label)

		theta[i] = orig - h
		if err := m.SetParamVector(theta); err != nil {
			panic(err)
		}
		lm, _ := SoftmaxCrossEntropy(m.Forward(x), label)

		grad[i] = (lp - lm) / (2 * h)
		theta[i] = orig
	}
	if err := m.SetParamVector(theta); err != nil {
		panic(err)
	}
	return grad
}

func analyticGrad(m *Sequential, x []float64, label int) tensor.Vector {
	m.ZeroGrad()
	out := m.Forward(x)
	_, dout := SoftmaxCrossEntropy(out, label)
	m.Backward(dout)
	return m.GradVector(1)
}

func checkGrads(t *testing.T, m *Sequential, x []float64, label int) {
	t.Helper()
	ana := analyticGrad(m, x, label)
	num := numericalGrad(m, x, label)
	for i := range ana {
		diff := math.Abs(ana[i] - num[i])
		scale := 1 + math.Abs(ana[i]) + math.Abs(num[i])
		if diff/scale > 1e-5 {
			t.Fatalf("gradient mismatch at θ[%d]: analytic %v vs numeric %v",
				i, ana[i], num[i])
		}
	}
}

func TestGradCheckDense(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := NewSequential(NewDense(4, 3, rng))
	x := rng.NormVec(make([]float64, 4), 0, 1)
	checkGrads(t, m, x, 1)
}

func TestGradCheckMLP(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := NewMLP(rng, 5, 8, 6, 3)
	x := rng.NormVec(make([]float64, 5), 0, 1)
	checkGrads(t, m, x, 2)
}

func TestGradCheckConv(t *testing.T) {
	rng := tensor.NewRNG(3)
	conv := NewConv2D(2, 5, 5, 3, 3, 3, 1, 1, rng)
	m := NewSequential(conv, NewReLU(conv.OutputSize()),
		NewDense(conv.OutputSize(), 4, rng))
	x := rng.NormVec(make([]float64, 2*5*5), 0, 1)
	checkGrads(t, m, x, 0)
}

func TestGradCheckConvStride2(t *testing.T) {
	rng := tensor.NewRNG(4)
	conv := NewConv2D(1, 6, 6, 2, 3, 3, 2, 0, rng)
	m := NewSequential(conv, NewDense(conv.OutputSize(), 3, rng))
	x := rng.NormVec(make([]float64, 36), 0, 1)
	checkGrads(t, m, x, 1)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := tensor.NewRNG(5)
	conv := NewConv2D(1, 6, 6, 2, 3, 3, 1, 1, rng)
	pool := NewMaxPool2D(2, 6, 6, 2, 2, 0)
	m := NewSequential(conv, pool, NewDense(pool.OutputSize(), 3, rng))
	x := rng.NormVec(make([]float64, 36), 0, 1)
	checkGrads(t, m, x, 2)
}

func TestGradCheckTinyConvNet(t *testing.T) {
	if testing.Short() {
		t.Skip("finite differences over ~2.7k params")
	}
	rng := tensor.NewRNG(6)
	m := NewTinyConvNet(rng, 10)
	x := rng.NormVec(make([]float64, 3*8*8), 0, 1)
	checkGrads(t, m, x, 7)
}

func TestGradCheckTanh(t *testing.T) {
	rng := tensor.NewRNG(8)
	m := NewSequential(NewDense(4, 5, rng), NewTanh(5), NewDense(5, 3, rng))
	x := rng.NormVec(make([]float64, 4), 0, 1)
	checkGrads(t, m, x, 1)
}

func TestGradCheckSigmoid(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := NewSequential(NewDense(4, 5, rng), NewSigmoid(5), NewDense(5, 3, rng))
	x := rng.NormVec(make([]float64, 4), 0, 1)
	checkGrads(t, m, x, 2)
}

func TestSigmoidExtremeInputsStable(t *testing.T) {
	s := NewSigmoid(3)
	out := s.Forward([]float64{1e4, -1e4, 0})
	if !tensor.IsFinite(out) {
		t.Fatalf("sigmoid unstable: %v", out)
	}
	if out[0] < 0.999 || out[1] > 0.001 || math.Abs(out[2]-0.5) > 1e-12 {
		t.Fatalf("sigmoid values wrong: %v", out)
	}
}

func TestTanhRange(t *testing.T) {
	tt := NewTanh(2)
	out := tt.Forward([]float64{100, -100})
	if out[0] != 1 || out[1] != -1 {
		t.Fatalf("tanh saturation wrong: %v", out)
	}
}

func TestGradCheckPaddedPool(t *testing.T) {
	rng := tensor.NewRNG(7)
	pool := NewMaxPool2D(1, 5, 5, 3, 2, 1)
	m := NewSequential(pool, NewDense(pool.OutputSize(), 2, rng))
	x := rng.NormVec(make([]float64, 25), 0, 1)
	checkGrads(t, m, x, 0)
}
