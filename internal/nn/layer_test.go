package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestParamVectorRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(10)
	m := NewMLP(rng, 3, 5, 2)
	theta := m.ParamVector()
	if len(theta) != m.ParamCount() {
		t.Fatalf("ParamVector length %d vs ParamCount %d", len(theta), m.ParamCount())
	}
	// Perturb and restore.
	perturbed := tensor.Clone(theta)
	for i := range perturbed {
		perturbed[i] += float64(i)
	}
	if err := m.SetParamVector(perturbed); err != nil {
		t.Fatal(err)
	}
	got := m.ParamVector()
	for i := range got {
		if got[i] != perturbed[i] {
			t.Fatalf("round-trip mismatch at %d: %v vs %v", i, got[i], perturbed[i])
		}
	}
}

func TestSetParamVectorDimensionError(t *testing.T) {
	rng := tensor.NewRNG(11)
	m := NewMLP(rng, 2, 2)
	if err := m.SetParamVector(make(tensor.Vector, m.ParamCount()+1)); err == nil {
		t.Fatal("expected dimension error")
	}
}

// Property: ParamVector ∘ SetParamVector is the identity for random vectors.
func TestParamRoundTripProperty(t *testing.T) {
	rng := tensor.NewRNG(12)
	m := NewMLP(rng, 4, 3, 2)
	d := m.ParamCount()
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		v := r.NormVec(make(tensor.Vector, d), 0, 10)
		if err := m.SetParamVector(v); err != nil {
			return false
		}
		got := m.ParamVector()
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := tensor.NewRNG(13)
	m := NewTinyConvNet(rng, 10)
	c := m.Clone()
	if c.ParamCount() != m.ParamCount() {
		t.Fatalf("clone dim %d vs %d", c.ParamCount(), m.ParamCount())
	}
	before := m.ParamVector()
	zero := make(tensor.Vector, c.ParamCount())
	if err := c.SetParamVector(zero); err != nil {
		t.Fatal(err)
	}
	after := m.ParamVector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("mutating clone changed the original model")
		}
	}
	// Clones also compute the same forward pass when given same params.
	if err := c.SetParamVector(before); err != nil {
		t.Fatal(err)
	}
	x := rng.NormVec(make([]float64, 3*8*8), 0, 1)
	a, b := m.Forward(x), c.Forward(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("clone forward differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestZeroGradAndAccumulation(t *testing.T) {
	rng := tensor.NewRNG(14)
	m := NewMLP(rng, 3, 4, 2)
	x := rng.NormVec(make([]float64, 3), 0, 1)

	g1 := analyticGrad(m, x, 0) // includes ZeroGrad
	// Two accumulated backward passes on the same example = 2× gradient.
	m.ZeroGrad()
	for k := 0; k < 2; k++ {
		out := m.Forward(x)
		_, dout := SoftmaxCrossEntropy(out, 0)
		m.Backward(dout)
	}
	g2 := m.GradVector(1)
	for i := range g1 {
		if math.Abs(g2[i]-2*g1[i]) > 1e-9 {
			t.Fatalf("accumulation broken at %d: %v vs 2·%v", i, g2[i], g1[i])
		}
	}
}

func TestGradVectorScaling(t *testing.T) {
	rng := tensor.NewRNG(15)
	m := NewMLP(rng, 2, 3, 2)
	x := []float64{0.5, -0.2}
	m.ZeroGrad()
	out := m.Forward(x)
	_, dout := SoftmaxCrossEntropy(out, 1)
	m.Backward(dout)
	g1 := m.GradVector(1)

	m.ZeroGrad()
	out = m.Forward(x)
	_, dout = SoftmaxCrossEntropy(out, 1)
	m.Backward(dout)
	gHalf := m.GradVector(0.5)
	for i := range g1 {
		if math.Abs(gHalf[i]-0.5*g1[i]) > 1e-12 {
			t.Fatalf("GradVector scaling broken at %d", i)
		}
	}
}

func TestSummaryAndTable1ParamCount(t *testing.T) {
	rng := tensor.NewRNG(16)
	m := NewCIFARNet(rng)
	// Table 1 architecture: conv1 4,864 + conv2 102,464 + fc1 1,573,248 +
	// fc2 73,920 + fc3 1,930 = 1,756,426 parameters ("1.75M" in the paper).
	const want = 4864 + 102464 + 1573248 + 73920 + 1930
	if m.ParamCount() != want {
		t.Fatalf("CIFARNet has %d params, want %d", m.ParamCount(), want)
	}
	infos := m.Summary()
	var sum int
	for _, li := range infos {
		sum += li.ParamCount
	}
	if sum != want {
		t.Fatalf("Summary params add to %d, want %d", sum, want)
	}
}

func TestCIFARNetForwardShape(t *testing.T) {
	rng := tensor.NewRNG(17)
	m := NewCIFARNet(rng)
	x := rng.NormVec(make([]float64, 3*32*32), 0, 1)
	out := m.Forward(x)
	if len(out) != 10 {
		t.Fatalf("CIFARNet output size %d, want 10", len(out))
	}
	if !tensor.IsFinite(out) {
		t.Fatal("CIFARNet forward produced non-finite logits")
	}
}

func TestMLPConstructionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for MLP with one size")
		}
	}()
	NewMLP(tensor.NewRNG(0), 3)
}
