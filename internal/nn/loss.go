package nn

import "math"

// SoftmaxCrossEntropy computes the softmax cross-entropy loss for a single
// example and its gradient with respect to the logits. label is the true
// class index. The returned gradient slice is freshly allocated.
//
// The implementation uses the max-shift trick for numerical stability, so it
// is safe on logits of any magnitude (Byzantine models can drive activations
// to extreme values; the evaluation path must not produce NaNs of its own).
func SoftmaxCrossEntropy(logits []float64, label int) (loss float64, dlogits []float64) {
	maxL := logits[0]
	for _, v := range logits[1:] {
		if v > maxL {
			maxL = v
		}
	}
	var sum float64
	dlogits = make([]float64, len(logits))
	for i, v := range logits {
		e := math.Exp(v - maxL)
		dlogits[i] = e
		sum += e
	}
	logSum := math.Log(sum)
	loss = logSum - (logits[label] - maxL)
	inv := 1 / sum
	for i := range dlogits {
		dlogits[i] *= inv
	}
	dlogits[label] -= 1
	return loss, dlogits
}

// Softmax returns the softmax probabilities of the logits (stable).
func Softmax(logits []float64) []float64 {
	maxL := logits[0]
	for _, v := range logits[1:] {
		if v > maxL {
			maxL = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxL)
		out[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Argmax returns the index of the largest element (first winner on ties).
func Argmax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// MSE computes the mean-squared-error loss ½‖pred − target‖² for a single
// example and its gradient with respect to pred. Used by regression-style
// unit tests and the quickstart example.
func MSE(pred, target []float64) (loss float64, dpred []float64) {
	dpred = make([]float64, len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		dpred[i] = d
		loss += 0.5 * d * d
	}
	return loss, dpred
}
