package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	p := Softmax([]float64{1, 2, 3, 4})
	var sum float64
	for _, v := range p {
		sum += v
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax component out of (0,1): %v", v)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
	// monotone: larger logit → larger probability
	for i := 0; i+1 < len(p); i++ {
		if p[i] >= p[i+1] {
			t.Fatalf("softmax not monotone: %v", p)
		}
	}
}

func TestSoftmaxExtremeLogitsStable(t *testing.T) {
	p := Softmax([]float64{1e4, -1e4, 0})
	if !tensor.IsFinite(p) {
		t.Fatalf("softmax unstable: %v", p)
	}
	if p[0] < 0.999 {
		t.Fatalf("softmax of dominant logit = %v, want ≈1", p[0])
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits → loss = log(K).
	loss, grad := SoftmaxCrossEntropy([]float64{0, 0, 0, 0}, 2)
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want log 4", loss)
	}
	// grad = p − onehot; p uniform 0.25
	for i, g := range grad {
		want := 0.25
		if i == 2 {
			want = -0.75
		}
		if math.Abs(g-want) > 1e-12 {
			t.Fatalf("grad[%d] = %v, want %v", i, g, want)
		}
	}
}

func TestCrossEntropyGradSumsToZero(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		logits := rng.NormVec(make([]float64, 5), 0, 3)
		label := rng.Intn(5)
		loss, grad := SoftmaxCrossEntropy(logits, label)
		if loss < 0 || math.IsNaN(loss) {
			return false
		}
		var sum float64
		for _, g := range grad {
			sum += g
		}
		return math.Abs(sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArgmax(t *testing.T) {
	tests := []struct {
		xs   []float64
		want int
	}{
		{[]float64{1, 3, 2}, 1},
		{[]float64{5}, 0},
		{[]float64{2, 2, 2}, 0}, // first winner on ties
		{[]float64{-3, -1, -2}, 1},
	}
	for _, tt := range tests {
		if got := Argmax(tt.xs); got != tt.want {
			t.Fatalf("Argmax(%v) = %d, want %d", tt.xs, got, tt.want)
		}
	}
}

func TestMSE(t *testing.T) {
	loss, grad := MSE([]float64{1, 2}, []float64{0, 4})
	// ½(1² + 2²) = 2.5, grad = pred − target = [1, −2]
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("MSE loss = %v", loss)
	}
	if grad[0] != 1 || grad[1] != -2 {
		t.Fatalf("MSE grad = %v", grad)
	}
}

func TestBatchGradientAveraging(t *testing.T) {
	rng := tensor.NewRNG(20)
	m := NewMLP(rng, 2, 4, 2)
	x1, x2 := []float64{1, 0}, []float64{0, 1}

	_, gBoth := BatchGradient(m, [][]float64{x1, x2}, []int{0, 1})
	_, g1 := BatchGradient(m, [][]float64{x1}, []int{0})
	_, g2 := BatchGradient(m, [][]float64{x2}, []int{1})
	for i := range gBoth {
		want := (g1[i] + g2[i]) / 2
		if math.Abs(gBoth[i]-want) > 1e-12 {
			t.Fatalf("batch gradient not the mean at %d: %v vs %v", i, gBoth[i], want)
		}
	}
}

func TestAccuracyBounds(t *testing.T) {
	rng := tensor.NewRNG(21)
	m := NewMLP(rng, 2, 8, 2)
	xs := [][]float64{{1, 1}, {-1, -1}, {2, 2}, {-2, -2}}
	labels := []int{0, 1, 0, 1}
	acc := Accuracy(m, xs, labels)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
	if Accuracy(m, nil, nil) != 0 {
		t.Fatal("accuracy of empty set should be 0")
	}
}

// A sanity check that plain SGD on this substrate actually learns: a linearly
// separable 2-class problem should reach high accuracy quickly.
func TestSGDLearnsLinearlySeparable(t *testing.T) {
	rng := tensor.NewRNG(22)
	m := NewMLP(rng, 2, 16, 2)

	xs := make([][]float64, 200)
	labels := make([]int, 200)
	for i := range xs {
		cls := i % 2
		cx := 2.0
		if cls == 1 {
			cx = -2.0
		}
		xs[i] = []float64{cx + 0.5*rng.Norm(), 0.5 * rng.Norm()}
		labels[i] = cls
	}

	theta := m.ParamVector()
	for step := 0; step < 150; step++ {
		i := (step * 16) % len(xs)
		end := i + 16
		if end > len(xs) {
			end = len(xs)
		}
		_, g := BatchGradient(m, xs[i:end], labels[i:end])
		tensor.AXPY(theta, -0.1, g)
		if err := m.SetParamVector(theta); err != nil {
			t.Fatal(err)
		}
	}
	if acc := Accuracy(m, xs, labels); acc < 0.95 {
		t.Fatalf("SGD failed to learn separable data: accuracy %v", acc)
	}
}
